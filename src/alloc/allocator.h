#ifndef IOLAP_ALLOC_ALLOCATOR_H_
#define IOLAP_ALLOC_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "alloc/dataset.h"
#include "alloc/policy.h"
#include "common/result.h"
#include "model/records.h"
#include "model/schema.h"
#include "storage/io_stats.h"
#include "storage/storage_env.h"

namespace iolap {

/// Connected-component census produced by the Transitive algorithm.
struct ComponentCensus {
  int64_t num_components = 0;        // components containing imprecise facts
  int64_t num_singleton_cells = 0;   // cells overlapped by no imprecise fact
  int64_t largest_component = 0;     // tuples (cells + entries)
  int64_t num_large_components = 0;  // processed externally
  int64_t large_component_pages = 0; // |L| of Theorem 10
  int64_t max_component_iterations = 0;
  int64_t total_component_iterations = 0;
};

/// Convergence trace of one EM iteration (Block/Independent).
struct IterationStats {
  double max_eps = 0;
  IoStats io;
  double seconds = 0;
};

/// Everything observable about one allocation run. Benchmarks report, and
/// tests assert on, these fields.
struct AllocationResult {
  /// The Extended Database D*: precise rows (weight 1) followed by the
  /// allocated imprecise rows.
  TypedFile<EdbRecord> edb;

  int64_t num_cells = 0;
  int64_t num_precise = 0;
  int64_t num_imprecise = 0;
  int num_tables = 0;

  int iterations = 0;       // Block/Independent global iterations
  double final_eps = 0;     // max relative change in the last iteration
  int num_groups = 0;       // |S| (Block / Transitive)
  int chain_width = 0;      // W (Independent)
  int64_t edges_emitted = 0;
  int64_t unallocatable_facts = 0;
  int64_t peak_window_records = 0;

  ComponentCensus components;  // Transitive only

  /// Per-iteration convergence trace (Block and Independent).
  std::vector<IterationStats> per_iteration;

  double prep_seconds = 0, alloc_seconds = 0, emit_seconds = 0;
  IoStats prep_io, alloc_io, emit_io;

  double total_seconds() const {
    return prep_seconds + alloc_seconds + emit_seconds;
  }
};

/// Facade: preprocess the fact table and run the selected allocation
/// algorithm end-to-end, producing the Extended Database.
class Allocator {
 public:
  /// `facts` is consumed (sorted in place). All working files live in
  /// `env`'s disk manager; `env.pool()` bounds the algorithms' memory.
  static Result<AllocationResult> Run(StorageEnv& env,
                                      const StarSchema& schema,
                                      TypedFile<FactRecord>* facts,
                                      const AllocationOptions& options);
};

}  // namespace iolap

#endif  // IOLAP_ALLOC_ALLOCATOR_H_
