#include "alloc/in_memory.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "model/sort_key.h"

namespace iolap {

MemoryAllocator::MemoryAllocator(const StarSchema* schema,
                                 std::vector<CellRecord> cells,
                                 std::vector<ImpreciseRecord> entries)
    : schema_(schema), cells_(std::move(cells)), entries_(std::move(entries)) {
  BuildEdges();
}

void MemoryAllocator::BuildEdges() {
  edges_.assign(entries_.size(), {});
  if (cells_.empty() || entries_.empty()) return;

  SpecComparator cmp(schema_, SortSpec::Canonical(*schema_));
  // The sweep below needs cells in canonical order; callers (Transitive
  // components are sorted, but maintenance hands in merged segment lists
  // and freshly created cells) may not guarantee it.
  std::sort(cells_.begin(), cells_.end(),
            [&](const CellRecord& a, const CellRecord& b) {
              return cmp.CellLess(a, b);
            });
  // Process entries in region-start order against the sorted cells; a
  // window of "open" entries bounds the work per cell.
  std::vector<int32_t> order(entries_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return cmp.EntryLess(entries_[a], entries_[b]);
  });

  std::vector<int32_t> open;
  size_t next = 0;
  for (size_t ci = 0; ci < cells_.size(); ++ci) {
    const CellRecord& cell = cells_[ci];
    open.erase(std::remove_if(open.begin(), open.end(),
                              [&](int32_t e) {
                                return cmp.CompareRegionEndToCell(
                                           entries_[e], cell) < 0;
                              }),
               open.end());
    while (next < order.size() &&
           cmp.CompareRegionStartToCell(entries_[order[next]], cell) <= 0) {
      open.push_back(order[next]);
      ++next;
    }
    for (int32_t e : open) {
      if (RegionCovers(*schema_, entries_[e].node, cell.leaf)) {
        edges_[e].push_back(static_cast<int32_t>(ci));
        ++num_edges_;
      }
    }
  }
}

double MemoryAllocator::Step(std::vector<double>* delta_cur) {
  // E-step: Γ(t)(r) from Δ(t-1).
  for (size_t e = 0; e < entries_.size(); ++e) {
    double gamma = 0;
    for (int32_t c : edges_[e]) gamma += cells_[c].delta_prev;
    entries_[e].gamma = gamma;
  }
  // M-step: Δ(t)(c) = δ(c) + Σ_r Δ(t-1)(c)/Γ(t)(r).
  for (size_t c = 0; c < cells_.size(); ++c) {
    (*delta_cur)[c] = cells_[c].delta0;
  }
  for (size_t e = 0; e < entries_.size(); ++e) {
    if (entries_[e].gamma <= 0) continue;
    for (int32_t c : edges_[e]) {
      (*delta_cur)[c] += cells_[c].delta_prev / entries_[e].gamma;
    }
  }
  double max_eps = 0;
  for (size_t c = 0; c < cells_.size(); ++c) {
    double prev = cells_[c].delta_prev;
    double eps = prev != 0
                     ? std::fabs((*delta_cur)[c] - prev) / std::fabs(prev)
                     : ((*delta_cur)[c] == 0 ? 0.0 : 1.0);
    max_eps = std::max(max_eps, eps);
    cells_[c].delta_prev = (*delta_cur)[c];
    cells_[c].delta_cur = (*delta_cur)[c];
  }
  return max_eps;
}

int MemoryAllocator::Iterate(double epsilon, int max_iterations,
                             bool force_all_iterations) {
  std::vector<double> delta_cur(cells_.size());
  int iterations = 0;
  for (int t = 1; t <= max_iterations; ++t) {
    double max_eps = Step(&delta_cur);
    ++iterations;
    if (!force_all_iterations && max_eps < epsilon) break;
  }
  return iterations;
}

double MemoryAllocator::IterateOnce() {
  std::vector<double> delta_cur(cells_.size());
  return Step(&delta_cur);
}

Status MemoryAllocator::Emit(typename TypedFile<EdbRecord>::Appender* out,
                             int64_t* edges_emitted, int64_t* unallocatable) {
  for (size_t e = 0; e < entries_.size(); ++e) {
    double gamma = 0;
    for (int32_t c : edges_[e]) gamma += cells_[c].delta_prev;
    entries_[e].gamma = gamma;
    entries_[e].num_cells = static_cast<int32_t>(edges_[e].size());
    if (gamma <= 0) {
      ++*unallocatable;
      continue;
    }
    for (int32_t c : edges_[e]) {
      if (cells_[c].delta_prev <= 0) continue;  // Definition 4: p_{c,r} > 0
      EdbRecord edb;
      edb.fact_id = entries_[e].fact_id;
      edb.measure = entries_[e].measure;
      edb.weight = cells_[c].delta_prev / gamma;
      std::memcpy(edb.leaf, cells_[c].leaf, sizeof(edb.leaf));
      IOLAP_RETURN_IF_ERROR(out->Append(edb));
      ++*edges_emitted;
    }
  }
  return Status::Ok();
}

void MemoryAllocator::EmitToVector(std::vector<EdbRecord>* out,
                                   int64_t* unallocatable) {
  for (size_t e = 0; e < entries_.size(); ++e) {
    double gamma = 0;
    for (int32_t c : edges_[e]) gamma += cells_[c].delta_prev;
    entries_[e].gamma = gamma;
    if (gamma <= 0) {
      ++*unallocatable;
      continue;
    }
    for (int32_t c : edges_[e]) {
      if (cells_[c].delta_prev <= 0) continue;  // Definition 4: p_{c,r} > 0
      EdbRecord edb;
      edb.fact_id = entries_[e].fact_id;
      edb.measure = entries_[e].measure;
      edb.weight = cells_[c].delta_prev / gamma;
      std::memcpy(edb.leaf, cells_[c].leaf, sizeof(edb.leaf));
      out->push_back(edb);
    }
  }
}

}  // namespace iolap
