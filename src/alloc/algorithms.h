#ifndef IOLAP_ALLOC_ALGORITHMS_H_
#define IOLAP_ALLOC_ALGORITHMS_H_

#include <vector>

#include "alloc/allocator.h"
#include "alloc/dataset.h"
#include "alloc/pass.h"
#include "alloc/policy.h"
#include "common/status.h"
#include "model/schema.h"
#include "storage/storage_env.h"

namespace iolap {

class CheckpointManager;  // recovery/checkpoint.h

/// Per-component metadata kept by the Transitive algorithm. Besides the
/// census it powers the EDB maintenance algorithm of Section 9: segments of
/// the component-sorted files plus the region bounding box for the R-tree.
struct ComponentInfo {
  int32_t ccid = -1;
  int64_t cell_begin = 0, cell_end = 0;
  int64_t entry_begin = 0, entry_end = 0;
  int64_t edb_begin = 0, edb_end = 0;  // imprecise EDB rows of the component
  int32_t bbox_lo[kMaxDims] = {};
  int32_t bbox_hi[kMaxDims] = {};  // inclusive leaf bounds

  int64_t tuples() const {
    return (cell_end - cell_begin) + (entry_end - entry_begin);
  }
};

/// Algorithm 1 (in-memory reference): loads C and all imprecise facts into
/// memory and evaluates the equations directly.
///
/// All four Run* functions take an optional CheckpointManager. When
/// non-null they commit their state at iteration (Basic/Block/Independent)
/// or component (Transitive) boundaries, and — if `ckpt->resumed()` — start
/// from the restored boundary instead of the beginning. Null reproduces the
/// pre-checkpoint code paths exactly.
Status RunBasic(StorageEnv& env, const StarSchema& schema,
                PreparedDataset* data, const AllocationOptions& options,
                AllocationResult* result, CheckpointManager* ckpt = nullptr);

/// Algorithm 3: chain decomposition of the summary-table partial order;
/// per iteration each chain re-sorts C (and its tables) into the chain's
/// sort order and runs the two passes with one-record cursors.
Status RunIndependent(StorageEnv& env, const StarSchema& schema,
                      PreparedDataset* data, const AllocationOptions& options,
                      AllocationResult* result,
                      CheckpointManager* ckpt = nullptr);

/// Algorithm 4: one fixed (canonical) sort order; summary tables grouped by
/// bin-packing their partition sizes into the buffer; per iteration each
/// group scans C once per pass with sliding windows.
Status RunBlock(StorageEnv& env, const StarSchema& schema,
                PreparedDataset* data, const AllocationOptions& options,
                AllocationResult* result, CheckpointManager* ckpt = nullptr);

/// Algorithm 5: identifies connected components of the allocation graph,
/// sorts all tuples into component order, then converges each component
/// independently (in memory when it fits, external Block otherwise).
/// `directory`, if non-null, receives per-component metadata (sorted by
/// component id) for the maintenance layer.
Status RunTransitive(StorageEnv& env, const StarSchema& schema,
                     PreparedDataset* data, const AllocationOptions& options,
                     AllocationResult* result,
                     std::vector<ComponentInfo>* directory,
                     CheckpointManager* ckpt = nullptr);

/// Shared emission: canonical-order Γ-recompute + emit passes over the
/// given summary-table groups, appending to the EDB.
Status EmitExternal(StorageEnv& env, const StarSchema& schema,
                    PreparedDataset* data,
                    const std::vector<std::vector<TableSegment>>& groups,
                    AllocationResult* result);

/// Builds Block's summary-table groups by first-fit-decreasing packing of
/// partition sizes (in pages) into the buffer budget.
std::vector<std::vector<TableSegment>> PackTableGroups(
    const PreparedDataset& data, int64_t buffer_pages);

}  // namespace iolap

#endif  // IOLAP_ALLOC_ALGORITHMS_H_
