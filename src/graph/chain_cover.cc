#include "graph/chain_cover.h"

#include <algorithm>
#include <functional>

namespace iolap {

namespace {

/// Kuhn's augmenting-path maximum bipartite matching. The instance sizes
/// here are the number of summary tables (hundreds at most — bounded by the
/// product of hierarchy depths), so O(V·E) is plenty.
class Matcher {
 public:
  Matcher(int n, const std::vector<std::vector<int>>& adj)
      : n_(n), adj_(adj), match_right_(n, -1) {}

  int Solve() {
    int matched = 0;
    for (int v = 0; v < n_; ++v) {
      used_.assign(n_, false);
      if (TryAugment(v)) ++matched;
    }
    return matched;
  }

  const std::vector<int>& match_right() const { return match_right_; }

 private:
  bool TryAugment(int v) {
    for (int to : adj_[v]) {
      if (used_[to]) continue;
      used_[to] = true;
      if (match_right_[to] == -1 || TryAugment(match_right_[to])) {
        match_right_[to] = v;
        return true;
      }
    }
    return false;
  }

  int n_;
  const std::vector<std::vector<int>>& adj_;
  std::vector<int> match_right_;
  std::vector<bool> used_;
};

}  // namespace

ChainCover ComputeChainCover(const std::vector<LevelVector>& tables,
                             int num_dims) {
  const int n = static_cast<int>(tables.size());
  ChainCover cover;
  if (n == 0) return cover;

  // Comparability edges i -> j whenever level(i) strictly dominates
  // nothing... i.e. i is strictly below j in the partial order. The DAG is
  // transitively closed, so a minimum path cover is a minimum chain cover.
  std::vector<std::vector<int>> adj(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && LevelVectorLeq(tables[i], tables[j], num_dims) &&
          !LevelVectorLeq(tables[j], tables[i], num_dims)) {
        adj[i].push_back(j);
      }
    }
  }

  Matcher matcher(n, adj);
  int matched = matcher.Solve();

  // next[i] = the table matched as i's successor in its chain.
  std::vector<int> next(n, -1);
  std::vector<bool> has_pred(n, false);
  for (int j = 0; j < n; ++j) {
    int i = matcher.match_right()[j];
    if (i >= 0) {
      next[i] = j;
      has_pred[j] = true;
    }
  }

  for (int start = 0; start < n; ++start) {
    if (has_pred[start]) continue;
    std::vector<int> chain;
    for (int v = start; v != -1; v = next[v]) chain.push_back(v);
    // Paths run from precise toward imprecise; the chain convention is most
    // imprecise first.
    std::reverse(chain.begin(), chain.end());
    cover.chains.push_back(std::move(chain));
  }
  cover.width = n - matched;
  return cover;
}

}  // namespace iolap
