#ifndef IOLAP_GRAPH_CHAIN_COVER_H_
#define IOLAP_GRAPH_CHAIN_COVER_H_

#include <vector>

#include "model/schema.h"

namespace iolap {

/// Is `a` <= `b` componentwise over the first `num_dims` coordinates?
/// (The summary-table partial order of Definition 8, in its transitive
/// closure form: Si precedes Sj iff Si's levels are dominated by Sj's.)
inline bool LevelVectorLeq(const LevelVector& a, const LevelVector& b,
                           int num_dims) {
  for (int d = 0; d < num_dims; ++d) {
    if (a[d] > b[d]) return false;
  }
  return true;
}

/// Result of decomposing the summary-table partial order into chains.
/// `chains[g]` lists summary-table indexes from most imprecise to most
/// precise. `width` is the number of chains, which by Dilworth's theorem
/// equals the longest antichain — the paper's lower bound `W` on the number
/// of sorts the Independent algorithm performs per iteration (Section 5.1).
struct ChainCover {
  std::vector<std::vector<int>> chains;
  int width = 0;
};

/// Computes a minimum chain cover of the given level vectors via minimum
/// path cover on the comparability DAG (König/Dilworth: maximum bipartite
/// matching). Level vectors must be pairwise distinct.
ChainCover ComputeChainCover(const std::vector<LevelVector>& tables,
                             int num_dims);

}  // namespace iolap

#endif  // IOLAP_GRAPH_CHAIN_COVER_H_
