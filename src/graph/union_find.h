#ifndef IOLAP_GRAPH_UNION_FIND_H_
#define IOLAP_GRAPH_UNION_FIND_H_

#include <cstdint>
#include <numeric>
#include <vector>

namespace iolap {

/// Disjoint-set forest with union by rank and path compression. This is the
/// in-memory `ccidMap` of the Transitive algorithm (Section 8): component
/// ids are merged as cells reveal that entries belong together, and
/// `Canonical()` reproduces the paper's convention that a merged component
/// is identified by the smallest ccid it absorbed.
class UnionFind {
 public:
  explicit UnionFind(int32_t n = 0) { Reset(n); }

  void Reset(int32_t n) {
    parent_.resize(n);
    std::iota(parent_.begin(), parent_.end(), 0);
    rank_.assign(n, 0);
    min_id_.resize(n);
    std::iota(min_id_.begin(), min_id_.end(), 0);
  }

  int32_t size() const { return static_cast<int32_t>(parent_.size()); }

  /// Adds a fresh singleton set; returns its id.
  int32_t Add() {
    int32_t id = size();
    parent_.push_back(id);
    rank_.push_back(0);
    min_id_.push_back(id);
    return id;
  }

  int32_t Find(int32_t x) {
    int32_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      int32_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Merges the sets of `a` and `b`; returns the canonical (smallest) id of
  /// the merged set.
  int32_t Union(int32_t a, int32_t b) {
    int32_t ra = Find(a);
    int32_t rb = Find(b);
    if (ra == rb) return min_id_[ra];
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    min_id_[ra] = std::min(min_id_[ra], min_id_[rb]);
    return min_id_[ra];
  }

  /// Smallest id ever merged into x's set — the paper's "true ccid".
  int32_t Canonical(int32_t x) { return min_id_[Find(x)]; }

  bool Connected(int32_t a, int32_t b) { return Find(a) == Find(b); }

 private:
  std::vector<int32_t> parent_;
  std::vector<int32_t> rank_;
  std::vector<int32_t> min_id_;
};

}  // namespace iolap

#endif  // IOLAP_GRAPH_UNION_FIND_H_
