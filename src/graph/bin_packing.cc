#include "graph/bin_packing.h"

#include <algorithm>
#include <numeric>

namespace iolap {

PackingResult FirstFitDecreasing(const std::vector<int64_t>& sizes,
                                 int64_t capacity) {
  const int n = static_cast<int>(sizes.size());
  PackingResult result;
  result.bin_of.assign(n, -1);
  result.oversized.assign(n, false);

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return sizes[a] > sizes[b]; });

  for (int item : order) {
    if (sizes[item] > capacity) {
      // Oversized: dedicated (overflowing) bin.
      result.bin_of[item] = result.num_bins;
      result.bin_load.push_back(sizes[item]);
      result.oversized[item] = true;
      ++result.num_bins;
      continue;
    }
    int placed = -1;
    for (int b = 0; b < result.num_bins; ++b) {
      if (result.bin_load[b] + sizes[item] <= capacity) {
        placed = b;
        break;
      }
    }
    if (placed < 0) {
      placed = result.num_bins++;
      result.bin_load.push_back(0);
    }
    result.bin_of[item] = placed;
    result.bin_load[placed] += sizes[item];
  }
  return result;
}

}  // namespace iolap
