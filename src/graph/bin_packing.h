#ifndef IOLAP_GRAPH_BIN_PACKING_H_
#define IOLAP_GRAPH_BIN_PACKING_H_

#include <cstdint>
#include <vector>

namespace iolap {

/// Assignment of items (summary tables, sized by partition size in pages)
/// to bins (summary-table groups that must fit the buffer together) —
/// Section 6's NP-complete grouping problem, solved with the standard
/// first-fit-decreasing approximation the paper prescribes.
struct PackingResult {
  std::vector<int> bin_of;        // bin index per item
  std::vector<int64_t> bin_load;  // total size per bin
  int num_bins = 0;
  /// Items individually larger than the capacity get a dedicated bin and
  /// are flagged here; callers handle them specially (Block degrades to
  /// thrash-prone windows, which the experiments surface honestly).
  std::vector<bool> oversized;
};

/// First-fit decreasing bin packing (2-approximation; in fact 11/9·OPT+1).
PackingResult FirstFitDecreasing(const std::vector<int64_t>& sizes,
                                 int64_t capacity);

}  // namespace iolap

#endif  // IOLAP_GRAPH_BIN_PACKING_H_
