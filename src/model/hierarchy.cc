#include "model/hierarchy.h"

#include <algorithm>

namespace iolap {

Result<NodeId> Hierarchy::FindNode(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no node named '" + name + "' in dimension " +
                            dimension_name_);
  }
  return it->second;
}

HierarchyBuilder::HierarchyBuilder(std::string dimension_name,
                                   std::string root_name)
    : dimension_name_(std::move(dimension_name)) {
  parent_.push_back(kInvalidNode);
  name_.push_back(std::move(root_name));
  children_.emplace_back();
}

NodeId HierarchyBuilder::AddNode(NodeId parent, std::string name) {
  NodeId id = static_cast<NodeId>(parent_.size());
  parent_.push_back(parent);
  name_.push_back(std::move(name));
  children_.emplace_back();
  children_[parent].push_back(id);
  return id;
}

Result<Hierarchy> HierarchyBuilder::Uniform(std::string dimension_name,
                                            const std::vector<int>& fanouts) {
  HierarchyBuilder builder(dimension_name);
  std::vector<NodeId> frontier = {0};
  for (size_t depth = 0; depth < fanouts.size(); ++depth) {
    std::vector<NodeId> next;
    next.reserve(frontier.size() * fanouts[depth]);
    for (NodeId p : frontier) {
      for (int i = 0; i < fanouts[depth]; ++i) {
        next.push_back(builder.AddNode(
            p, dimension_name + "_L" + std::to_string(depth + 1) + "_" +
                   std::to_string(next.size())));
      }
    }
    frontier = std::move(next);
  }
  return builder.Build();
}

Result<Hierarchy> HierarchyBuilder::Build() {
  const size_t n = parent_.size();
  if (n == 1) {
    return Status::InvalidArgument("hierarchy '" + dimension_name_ +
                                   "' has no nodes below ALL");
  }

  // Depth of each node (root = 0), iteratively via DFS.
  std::vector<int> depth(n, -1);
  depth[0] = 0;
  int max_depth = 0;
  {
    std::vector<NodeId> stack = {0};
    while (!stack.empty()) {
      NodeId node = stack.back();
      stack.pop_back();
      for (NodeId child : children_[node]) {
        depth[child] = depth[node] + 1;
        max_depth = std::max(max_depth, depth[child]);
        stack.push_back(child);
      }
    }
  }
  // Balance check: every leaf must sit at max_depth.
  for (size_t i = 0; i < n; ++i) {
    if (children_[i].empty() && depth[static_cast<NodeId>(i)] != max_depth) {
      return Status::InvalidArgument(
          "hierarchy '" + dimension_name_ + "' is not balanced: leaf '" +
          name_[i] + "' at depth " + std::to_string(depth[i]) +
          " != " + std::to_string(max_depth));
    }
  }

  Hierarchy h;
  h.dimension_name_ = dimension_name_;
  h.num_levels_ = max_depth + 1;
  h.parent_ = parent_;
  h.name_ = name_;
  h.level_.resize(n);
  h.leaf_begin_.assign(n, 0);
  h.leaf_end_.assign(n, 0);
  h.ordinal_.assign(n, 0);
  h.levels_.resize(h.num_levels_);

  for (size_t i = 0; i < n; ++i) {
    h.level_[i] = h.num_levels_ - depth[i];
  }

  // Iterative DFS assigning leaf ids and leaf ranges in child order.
  LeafId next_leaf = 0;
  {
    // Stack entries: (node, child cursor). Post-order completion sets
    // leaf_end; pre-order sets leaf_begin.
    std::vector<std::pair<NodeId, size_t>> stack;
    stack.emplace_back(0, 0);
    h.leaf_begin_[0] = 0;
    while (!stack.empty()) {
      auto& [node, cursor] = stack.back();
      if (cursor == 0) {
        h.leaf_begin_[node] = next_leaf;
        if (children_[node].empty()) {
          h.leaf_node_.push_back(node);
          ++next_leaf;
        }
      }
      if (cursor < children_[node].size()) {
        NodeId child = children_[node][cursor];
        ++cursor;
        stack.emplace_back(child, 0);
      } else {
        h.leaf_end_[node] = next_leaf;
        stack.pop_back();
      }
    }
  }
  h.num_leaves_ = next_leaf;

  // Per-level ordinals in leaf_begin order (== DFS order within a level).
  for (size_t i = 0; i < n; ++i) {
    h.levels_[h.level_[i] - 1].push_back(static_cast<NodeId>(i));
  }
  for (auto& level_nodes : h.levels_) {
    std::sort(level_nodes.begin(), level_nodes.end(),
              [&](NodeId a, NodeId b) {
                return h.leaf_begin_[a] < h.leaf_begin_[b];
              });
    for (size_t i = 0; i < level_nodes.size(); ++i) {
      h.ordinal_[level_nodes[i]] = static_cast<int32_t>(i);
    }
  }

  // Fast leaf -> ancestor-ordinal table.
  h.leaf_ancestor_ordinal_.resize(static_cast<size_t>(h.num_levels_) *
                                  h.num_leaves_);
  for (LeafId leaf = 0; leaf < h.num_leaves_; ++leaf) {
    NodeId node = h.leaf_node_[leaf];
    for (int level = 1; level <= h.num_levels_; ++level) {
      h.leaf_ancestor_ordinal_[(level - 1) * h.num_leaves_ + leaf] =
          h.ordinal_[node];
      node = h.parent_[node];
    }
  }

  // Name lookup.
  for (size_t i = 0; i < n; ++i) {
    auto [it, inserted] = h.by_name_.emplace(h.name_[i], static_cast<NodeId>(i));
    if (!inserted) {
      return Status::InvalidArgument("duplicate node name '" + h.name_[i] +
                                     "' in dimension " + dimension_name_);
    }
  }
  return h;
}

}  // namespace iolap
