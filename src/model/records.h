#ifndef IOLAP_MODEL_RECORDS_H_
#define IOLAP_MODEL_RECORDS_H_

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "model/schema.h"

namespace iolap {

using FactId = int64_t;

/// Raw fact as ingested (Definition 2 instance): one node id + level per
/// dimension, a measure, and a unique id. Fixed-size POD so it pages
/// directly. ~48 bytes, comparable to the paper's 40-byte tuples.
struct FactRecord {
  FactId fact_id = 0;
  double measure = 0;
  int32_t node[kMaxDims] = {};
  uint8_t level[kMaxDims] = {};
  uint8_t pad[2] = {};

  bool IsPrecise(int num_dims) const {
    for (int d = 0; d < num_dims; ++d) {
      if (level[d] != 1) return false;
    }
    return true;
  }

  LevelVector level_vector() const {
    LevelVector v{};
    std::memcpy(v.data(), level, kMaxDims);
    return v;
  }
};
static_assert(std::is_trivially_copyable_v<FactRecord>);
static_assert(sizeof(FactRecord) == 48);

/// One entry of the cell summary table C. Carries the policy quantity
/// δ(c) and the two iterates Δ(t-1)(c), Δ(t)(c) of the allocation template,
/// plus the connected-component id assigned by the Transitive algorithm.
struct CellRecord {
  double delta0 = 0;      // δ(c)
  double delta_prev = 0;  // Δ(t-1)(c)
  double delta_cur = 0;   // Δ(t)(c)
  int32_t leaf[kMaxDims] = {};
  int32_t ccid = -1;
  uint8_t overlapped = 0;  // covered by >= 1 imprecise fact?
  uint8_t pad[3] = {};
};
static_assert(std::is_trivially_copyable_v<CellRecord>);
static_assert(sizeof(CellRecord) == 56);

/// One imprecise fact, resident in its summary table. `first`/`last` are
/// conservative bounds (page-granular, from cell fence keys) on the indexes
/// in C of the cells this fact overlaps — the machinery behind partition
/// sizes (Definition 9) and the Block algorithm's sliding windows.
struct ImpreciseRecord {
  FactId fact_id = 0;
  double measure = 0;
  double gamma = 0;    // Γ(t)(r)
  int64_t first = 0;   // first possibly-overlapped cell index in C
  int64_t last = -1;   // last possibly-overlapped cell index in C
  int32_t node[kMaxDims] = {};
  uint8_t level[kMaxDims] = {};
  int16_t table = -1;  // summary table index
  int32_t ccid = -1;
  int32_t num_cells = 0;  // |reg(r) ∩ C|, filled during allocation

  LevelVector level_vector() const {
    LevelVector v{};
    std::memcpy(v.data(), level, kMaxDims);
    return v;
  }
};
static_assert(std::is_trivially_copyable_v<ImpreciseRecord>);
static_assert(sizeof(ImpreciseRecord) == 80);

/// One row of the Extended Database D* (Definition 4): fact r allocated to
/// cell c with weight p_{c,r}. Precise facts appear once with weight 1.
struct EdbRecord {
  FactId fact_id = 0;
  double measure = 0;
  double weight = 0;  // p_{c,r}
  int32_t leaf[kMaxDims] = {};
};
static_assert(std::is_trivially_copyable_v<EdbRecord>);
static_assert(sizeof(EdbRecord) == 48);

/// Region containment test: is the cell with the given leaves a possible
/// completion of the (node, level) region of `fact`?
inline bool RegionCovers(const StarSchema& schema, const int32_t* node,
                         const int32_t* leaf) {
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (!schema.dim(d).Covers(node[d], leaf[d])) return false;
  }
  return true;
}

}  // namespace iolap

#endif  // IOLAP_MODEL_RECORDS_H_
