#ifndef IOLAP_MODEL_HIERARCHY_H_
#define IOLAP_MODEL_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace iolap {

/// Index of a node within one dimension's hierarchy (0 = ALL/root).
using NodeId = int32_t;
/// DFS ordinal of a leaf within one dimension (0-based, contiguous).
using LeafId = int32_t;

inline constexpr NodeId kInvalidNode = -1;

/// A hierarchical domain (Definition 1 of the paper): a balanced tree whose
/// leaves are the base domain and whose internal nodes are imprecise values.
/// `ALL` is the root. LEVEL(leaf) = 1; LEVEL(root) = depth of the tree.
///
/// After `HierarchyBuilder::Build`, leaves carry consecutive DFS ordinals,
/// so every node covers a contiguous leaf range `[leaf_begin, leaf_end)` —
/// the property all the paper's sort orders rely on. Nodes within each level
/// are likewise DFS-ordered ("ordinals"), which makes ancestor ordinals
/// monotone in leaf id.
class Hierarchy {
 public:
  const std::string& dimension_name() const { return dimension_name_; }
  int32_t num_nodes() const { return static_cast<int32_t>(parent_.size()); }
  int32_t num_leaves() const { return num_leaves_; }
  /// Number of levels, counting leaves as level 1 and ALL as `num_levels()`.
  int num_levels() const { return num_levels_; }

  NodeId root() const { return 0; }
  int level(NodeId node) const { return level_[node]; }
  NodeId parent(NodeId node) const { return parent_[node]; }
  const std::string& name(NodeId node) const { return name_[node]; }
  bool is_leaf(NodeId node) const { return level_[node] == 1; }

  LeafId leaf_begin(NodeId node) const { return leaf_begin_[node]; }
  LeafId leaf_end(NodeId node) const { return leaf_end_[node]; }
  int32_t region_width(NodeId node) const {
    return leaf_end_[node] - leaf_begin_[node];
  }

  /// The leaf node carrying DFS ordinal `leaf`.
  NodeId leaf_node(LeafId leaf) const { return leaf_node_[leaf]; }

  /// Nodes of `level` in DFS order.
  const std::vector<NodeId>& nodes_at_level(int level) const {
    return levels_[level - 1];
  }
  int32_t num_nodes_at_level(int level) const {
    return static_cast<int32_t>(levels_[level - 1].size());
  }

  /// DFS ordinal of `node` among the nodes of its own level.
  int32_t ordinal(NodeId node) const { return ordinal_[node]; }

  /// Ancestor of `node` at `level`; `level` must be >= level(node).
  NodeId AncestorAtLevel(NodeId node, int level) const {
    NodeId n = node;
    for (int l = level_[node]; l < level; ++l) n = parent_[n];
    return n;
  }

  /// Ordinal (at `level`) of the ancestor of leaf `leaf`. O(1) via a
  /// precomputed table; this is the hot call in sort-key evaluation.
  int32_t LeafAncestorOrdinal(LeafId leaf, int level) const {
    return leaf_ancestor_ordinal_[(level - 1) * num_leaves_ + leaf];
  }

  /// Node id for the given (level, ordinal) pair.
  NodeId NodeAt(int level, int32_t ordinal) const {
    return levels_[level - 1][ordinal];
  }

  /// Whether leaf `leaf` is a possible completion of `node`.
  bool Covers(NodeId node, LeafId leaf) const {
    return leaf >= leaf_begin_[node] && leaf < leaf_end_[node];
  }

  /// Looks a node up by name (names must be unique per dimension).
  Result<NodeId> FindNode(const std::string& name) const;

 private:
  friend class HierarchyBuilder;

  std::string dimension_name_;
  int32_t num_leaves_ = 0;
  int num_levels_ = 0;
  std::vector<NodeId> parent_;
  std::vector<int> level_;
  std::vector<LeafId> leaf_begin_;
  std::vector<LeafId> leaf_end_;
  std::vector<int32_t> ordinal_;
  std::vector<std::string> name_;
  std::vector<NodeId> leaf_node_;
  std::vector<std::vector<NodeId>> levels_;
  std::vector<int32_t> leaf_ancestor_ordinal_;  // [level-1][leaf], flattened
  std::unordered_map<std::string, NodeId> by_name_;
};

/// Builds a balanced Hierarchy. Add children breadth- or depth-first in any
/// order; `Build` validates balance (all leaves at equal depth) and computes
/// DFS numbering. Ragged real-world hierarchies should be padded to balance
/// first (standard OLAP practice; the paper's datasets are balanced).
class HierarchyBuilder {
 public:
  /// Starts a hierarchy whose root (ALL) has the given display name.
  explicit HierarchyBuilder(std::string dimension_name,
                            std::string root_name = "ALL");

  /// Adds a child of `parent`; returns the new node's id.
  NodeId AddNode(NodeId parent, std::string name);

  /// Convenience: builds a uniform tree with the given fan-outs per level
  /// from the root down (e.g. {10, 5} = root with 10 children, each with 5
  /// leaves). Names are auto-generated.
  static Result<Hierarchy> Uniform(std::string dimension_name,
                                   const std::vector<int>& fanouts);

  Result<Hierarchy> Build();

 private:
  std::string dimension_name_;
  std::vector<NodeId> parent_;
  std::vector<std::string> name_;
  std::vector<std::vector<NodeId>> children_;
};

}  // namespace iolap

#endif  // IOLAP_MODEL_HIERARCHY_H_
