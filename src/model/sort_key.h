#ifndef IOLAP_MODEL_SORT_KEY_H_
#define IOLAP_MODEL_SORT_KEY_H_

#include <cstdint>
#include <vector>

#include "model/records.h"
#include "model/schema.h"

namespace iolap {

/// Packs up to `width_bits` of a non-negative value below the already-used
/// high bits of a normalized key (see `SorterKeyPrefix` in
/// storage/external_sort.h). Truncation keeps the prefix monotone: dropped
/// low bits only turn "less" into "equal", never reorder.
inline void PackKeyBits(uint64_t value, int width_bits, uint64_t* key,
                        int* bits_left) {
  if (*bits_left <= 0) return;
  if (width_bits <= *bits_left) {
    *bits_left -= width_bits;
    *key |= value << *bits_left;
  } else {
    *key |= value >> (width_bits - *bits_left);
    *bits_left = 0;
  }
}

/// One term of a sort order: "the ancestor ordinal of dimension `dim` at
/// hierarchy level `level`". Because leaves are DFS-numbered, ancestor
/// ordinals are monotone in leaf id, so any term list yields a total order
/// on cells under which hierarchy-aligned regions behave predictably.
struct SortTerm {
  int8_t dim;
  int8_t level;
};

/// A sort order L: an ordered list of SortTerms, always refined down to the
/// leaf level of every dimension so cell keys are total.
class SortSpec {
 public:
  /// Canonical order: leaf ids in dimension order. The cell summary table C
  /// is materialized in this order, and Block runs entirely in it.
  static SortSpec Canonical(const StarSchema& schema) {
    SortSpec spec;
    for (int d = 0; d < schema.num_dims(); ++d) {
      spec.terms_.push_back(SortTerm{static_cast<int8_t>(d), 1});
    }
    return spec;
  }

  /// Chain order (Theorem 5): given the chain's level vectors from most
  /// imprecise to most precise, emits ancestor terms top-down so that every
  /// summary table in the chain has contiguous regions in the cell order.
  static SortSpec ForChain(const StarSchema& schema,
                           const std::vector<LevelVector>& descending) {
    SortSpec spec;
    std::vector<int> current(schema.num_dims(), 127);  // "not yet emitted"
    for (const LevelVector& v : descending) {
      for (int d = 0; d < schema.num_dims(); ++d) {
        if (v[d] < current[d]) {
          spec.terms_.push_back(
              SortTerm{static_cast<int8_t>(d), static_cast<int8_t>(v[d])});
          current[d] = v[d];
        }
      }
    }
    for (int d = 0; d < schema.num_dims(); ++d) {
      if (current[d] > 1) {
        spec.terms_.push_back(SortTerm{static_cast<int8_t>(d), 1});
      }
    }
    return spec;
  }

  const std::vector<SortTerm>& terms() const { return terms_; }

 private:
  std::vector<SortTerm> terms_;
};

/// Comparators under a SortSpec. Regions (imprecise facts) are compared by
/// their key *interval*: `start` uses each region's first leaf per
/// dimension, `end` its last. Within a chain order a region is exactly a
/// key-prefix block, so these interval comparisons drive the one-record
/// cursors of the Independent algorithm.
class SpecComparator {
 public:
  SpecComparator(const StarSchema* schema, SortSpec spec)
      : schema_(schema), spec_(std::move(spec)) {}

  const SortSpec& spec() const { return spec_; }

  int32_t CellTermValue(const SortTerm& t, const int32_t* leaf) const {
    return schema_->dim(t.dim).LeafAncestorOrdinal(leaf[t.dim], t.level);
  }

  /// Term value at the low corner of a region.
  int32_t RegionStartTermValue(const SortTerm& t, const int32_t* node,
                               const uint8_t* level) const {
    const Hierarchy& h = schema_->dim(t.dim);
    if (t.level >= level[t.dim]) {
      return h.ordinal(h.AncestorAtLevel(node[t.dim], t.level));
    }
    return h.LeafAncestorOrdinal(h.leaf_begin(node[t.dim]), t.level);
  }

  /// Term value at the high corner of a region.
  int32_t RegionEndTermValue(const SortTerm& t, const int32_t* node,
                             const uint8_t* level) const {
    const Hierarchy& h = schema_->dim(t.dim);
    if (t.level >= level[t.dim]) {
      return h.ordinal(h.AncestorAtLevel(node[t.dim], t.level));
    }
    return h.LeafAncestorOrdinal(h.leaf_end(node[t.dim]) - 1, t.level);
  }

  bool CellLess(const CellRecord& a, const CellRecord& b) const {
    for (const SortTerm& t : spec_.terms()) {
      int32_t va = CellTermValue(t, a.leaf);
      int32_t vb = CellTermValue(t, b.leaf);
      if (va != vb) return va < vb;
    }
    return false;
  }

  /// Orders imprecise entries by region start key.
  bool EntryLess(const ImpreciseRecord& a, const ImpreciseRecord& b) const {
    for (const SortTerm& t : spec_.terms()) {
      int32_t va = RegionStartTermValue(t, a.node, a.level);
      int32_t vb = RegionStartTermValue(t, b.node, b.level);
      if (va != vb) return va < vb;
    }
    return false;
  }

  /// < 0 / 0 / > 0 comparing the region's start key to the cell's key.
  int CompareRegionStartToCell(const ImpreciseRecord& r,
                               const CellRecord& c) const {
    for (const SortTerm& t : spec_.terms()) {
      int32_t vr = RegionStartTermValue(t, r.node, r.level);
      int32_t vc = CellTermValue(t, c.leaf);
      if (vr != vc) return vr < vc ? -1 : 1;
    }
    return 0;
  }

  /// < 0 / 0 / > 0 comparing the region's end key to the cell's key.
  int CompareRegionEndToCell(const ImpreciseRecord& r,
                             const CellRecord& c) const {
    for (const SortTerm& t : spec_.terms()) {
      int32_t vr = RegionEndTermValue(t, r.node, r.level);
      int32_t vc = CellTermValue(t, c.leaf);
      if (vr != vc) return vr < vc ? -1 : 1;
    }
    return 0;
  }

 private:
  const StarSchema* schema_;
  SortSpec spec_;
};

/// `SpecComparator::CellLess` as a sorter comparator, with a normalized key
/// prefix over the first two sort terms (term ordinals are non-negative
/// int32s, so packing two of them big-end-first refines the term order).
class CellSpecLess {
 public:
  explicit CellSpecLess(const SpecComparator* cmp) : cmp_(cmp) {}

  bool operator()(const CellRecord& a, const CellRecord& b) const {
    return cmp_->CellLess(a, b);
  }

  uint64_t KeyPrefix(const CellRecord& a) const {
    const std::vector<SortTerm>& terms = cmp_->spec().terms();
    uint64_t key = 0;
    int bits = 64;
    for (size_t t = 0; t < terms.size() && bits > 0; ++t) {
      PackKeyBits(
          static_cast<uint32_t>(cmp_->CellTermValue(terms[t], a.leaf)), 32,
          &key, &bits);
    }
    return key;
  }

 private:
  const SpecComparator* cmp_;
};

/// `SpecComparator::EntryLess` (region start key order) as a sorter
/// comparator with a normalized key prefix, built like CellSpecLess.
class EntrySpecLess {
 public:
  explicit EntrySpecLess(const SpecComparator* cmp) : cmp_(cmp) {}

  bool operator()(const ImpreciseRecord& a, const ImpreciseRecord& b) const {
    return cmp_->EntryLess(a, b);
  }

  uint64_t KeyPrefix(const ImpreciseRecord& a) const {
    const std::vector<SortTerm>& terms = cmp_->spec().terms();
    uint64_t key = 0;
    int bits = 64;
    for (size_t t = 0; t < terms.size() && bits > 0; ++t) {
      PackKeyBits(static_cast<uint32_t>(
                      cmp_->RegionStartTermValue(terms[t], a.node, a.level)),
                  32, &key, &bits);
    }
    return key;
  }

 private:
  const SpecComparator* cmp_;
};

/// Orders raw facts into "summary table order" (Section 4.1): by level
/// vector (so precise facts, all-ones, come first and each summary table is
/// a contiguous segment), then by region start in canonical order (so the
/// precise prefix materializes C already canonically sorted).
class SummaryOrderLess {
 public:
  explicit SummaryOrderLess(const StarSchema* schema) : schema_(schema) {}

  bool operator()(const FactRecord& a, const FactRecord& b) const {
    for (int d = 0; d < schema_->num_dims(); ++d) {
      if (a.level[d] != b.level[d]) return a.level[d] < b.level[d];
    }
    for (int d = 0; d < schema_->num_dims(); ++d) {
      const Hierarchy& h = schema_->dim(d);
      LeafId la = h.leaf_begin(a.node[d]);
      LeafId lb = h.leaf_begin(b.node[d]);
      if (la != lb) return la < lb;
    }
    return a.fact_id < b.fact_id;
  }

  /// Normalized key: the level vector (one byte per dimension, the first
  /// comparison loop above), then as many leaf-begin values as still fit.
  uint64_t KeyPrefix(const FactRecord& a) const {
    uint64_t key = 0;
    int bits = 64;
    const int k = schema_->num_dims();
    for (int d = 0; d < k && bits > 0; ++d) {
      PackKeyBits(a.level[d], 8, &key, &bits);
    }
    for (int d = 0; d < k && bits > 0; ++d) {
      uint32_t leaf =
          static_cast<uint32_t>(schema_->dim(d).leaf_begin(a.node[d]));
      PackKeyBits(leaf, 32, &key, &bits);
    }
    return key;
  }

 private:
  const StarSchema* schema_;
};

}  // namespace iolap

#endif  // IOLAP_MODEL_SORT_KEY_H_
