#ifndef IOLAP_MODEL_SCHEMA_H_
#define IOLAP_MODEL_SCHEMA_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "model/hierarchy.h"

namespace iolap {

/// Compile-time bound on dimensionality; keeps all disk records fixed-size.
/// The paper's datasets use 4 dimensions.
inline constexpr int kMaxDims = 6;

/// Vector of level values, one per dimension; identifies a summary table
/// (Definition 7). Unused trailing dimensions are level 1.
using LevelVector = std::array<uint8_t, kMaxDims>;

/// A fact-table schema (Definition 2): k dimension attributes with
/// hierarchical domains plus a numeric measure. Level attributes are implied
/// (every stored fact carries its level vector).
class StarSchema {
 public:
  static Result<StarSchema> Create(std::vector<Hierarchy> dimensions) {
    if (dimensions.empty() ||
        dimensions.size() > static_cast<size_t>(kMaxDims)) {
      return Status::InvalidArgument(
          "schema must have between 1 and " + std::to_string(kMaxDims) +
          " dimensions, got " + std::to_string(dimensions.size()));
    }
    StarSchema s;
    s.dims_ = std::move(dimensions);
    return s;
  }

  int num_dims() const { return static_cast<int>(dims_.size()); }
  const Hierarchy& dim(int d) const { return dims_[d]; }

  /// Total number of base-domain cells (cross product of leaf counts).
  double TotalCellSpace() const {
    double total = 1;
    for (const Hierarchy& h : dims_) total *= h.num_leaves();
    return total;
  }

 private:
  std::vector<Hierarchy> dims_;
};

}  // namespace iolap

#endif  // IOLAP_MODEL_SCHEMA_H_
