#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

#include "obs/metrics.h"

namespace iolap {

namespace {

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " failed for " + path + ": " + std::strerror(errno);
}

// Keep gather writes comfortably under IOV_MAX (1024 on Linux).
constexpr int64_t kMaxIov = 256;

// Chunk size (pages) for checkpoint export/import copies: 1 MiB transfers.
constexpr int64_t kCheckpointChunkPages = 256;

}  // namespace

template <typename Fn>
Status DiskManager::RunWithRetry(Fn&& attempt) {
  Status st = attempt();
  if (st.ok() || st.code() != StatusCode::kUnavailable ||
      !retry_policy_.enabled()) {
    return st;
  }
  int64_t backoff_us = retry_policy_.backoff_initial_us;
  for (int retry = 1; retry <= retry_policy_.max_retries; ++retry) {
    // Looked up per retry, not cached: retries are rare (transient faults
    // only) and the registry may be installed after this manager exists.
    if (Counter* c = GlobalCounter("io.retries")) c->Add(1);
    if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
    backoff_us = std::min<int64_t>(
        retry_policy_.backoff_max_us,
        static_cast<int64_t>(static_cast<double>(backoff_us) *
                             retry_policy_.backoff_multiplier));
    st = attempt();
    if (st.ok() || st.code() != StatusCode::kUnavailable) return st;
  }
  return Status::Unavailable(st.message() + " (exhausted " +
                             std::to_string(retry_policy_.max_retries) +
                             " retries)");
}

DiskManager::DiskManager(std::string directory)
    : directory_(std::move(directory)) {
  ::mkdir(directory_.c_str(), 0755);
}

DiskManager::~DiskManager() {
  for (auto& [id, state] : files_) {
    if (state->fd >= 0) ::close(state->fd);
    ::unlink(state->path.c_str());
  }
}

Result<FileId> DiskManager::CreateFile(const std::string& hint) {
  std::unique_lock lock(mu_);
  FileId id = next_file_id_++;
  std::string path =
      directory_ + "/f" + std::to_string(id) + "_" + hint + ".dat";
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("open", path));
  }
  auto state = std::make_unique<FileState>();
  state->fd = fd;
  state->path = std::move(path);
  files_[id] = std::move(state);
  return id;
}

Result<DiskManager::FileState*> DiskManager::GetFile(FileId file) const {
  std::shared_lock lock(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("unknown file id " + std::to_string(file));
  }
  return it->second.get();
}

Status DiskManager::Inject(char op, FileId file, PageId first, int64_t n) {
  if (!fault_injector_) return Status::Ok();
  // One injector call per page keeps countdown-style injectors hitting the
  // same fault points whether the pages move in one transfer or many.
  std::lock_guard<std::mutex> lock(injector_mu_);
  for (int64_t i = 0; i < n; ++i) {
    IOLAP_RETURN_IF_ERROR(fault_injector_(op, file, first + i));
  }
  return Status::Ok();
}

Status DiskManager::GrowTo(FileState* state, PageId end_page) {
  // Appends to one file come from a single thread (see the class comment),
  // so this read-compare-store does not race with another append.
  if (end_page > state->size_pages.load()) {
    state->size_pages.store(end_page);
  }
  return Status::Ok();
}

Status DiskManager::ReadPage(FileId file, PageId page, void* buffer) {
  return ReadPages(file, page, 1, buffer, /*prefetch=*/false);
}

Status DiskManager::ReadPages(FileId file, PageId first, int64_t n,
                              void* buffer, bool prefetch) {
  return RunWithRetry(
      [&] { return ReadPagesOnce(file, first, n, buffer, prefetch); });
}

Status DiskManager::ReadPagesOnce(FileId file, PageId first, int64_t n,
                                  void* buffer, bool prefetch) {
  if (!prefetch) {
    IOLAP_RETURN_IF_ERROR(Inject('r', file, first, n));
  }
  IOLAP_ASSIGN_OR_RETURN(FileState * state, GetFile(file));
  if (n <= 0) {
    return Status::InvalidArgument("ReadPages of a non-positive page count");
  }
  if (first < 0 || first + n > state->size_pages.load()) {
    return Status::OutOfRange(
        "read of pages [" + std::to_string(first) + "," +
        std::to_string(first + n) + ") beyond file of " +
        std::to_string(state->size_pages.load()) + " pages");
  }
  ssize_t want = static_cast<ssize_t>(n) * static_cast<ssize_t>(kPageSize);
  ssize_t got = ::pread(state->fd, buffer, static_cast<size_t>(want),
                        static_cast<off_t>(first) * kPageSize);
  if (got != want) {
    return Status::IoError(ErrnoMessage("pread", state->path));
  }
  auto& counter = prefetch ? prefetch_reads_ : page_reads_;
  counter.fetch_add(n, std::memory_order_relaxed);
  return Status::Ok();
}

Status DiskManager::ReadPagesScatter(FileId file, PageId first,
                                     std::byte* const* pages, int64_t n,
                                     bool prefetch) {
  return RunWithRetry(
      [&] { return ReadPagesScatterOnce(file, first, pages, n, prefetch); });
}

Status DiskManager::ReadPagesScatterOnce(FileId file, PageId first,
                                         std::byte* const* pages, int64_t n,
                                         bool prefetch) {
  if (!prefetch) {
    IOLAP_RETURN_IF_ERROR(Inject('r', file, first, n));
  }
  IOLAP_ASSIGN_OR_RETURN(FileState * state, GetFile(file));
  if (n <= 0) {
    return Status::InvalidArgument("scatter read of a non-positive count");
  }
  if (first < 0 || first + n > state->size_pages.load()) {
    return Status::OutOfRange(
        "read of pages [" + std::to_string(first) + "," +
        std::to_string(first + n) + ") beyond file of " +
        std::to_string(state->size_pages.load()) + " pages");
  }
  int64_t done = 0;
  while (done < n) {
    int64_t batch = std::min(n - done, kMaxIov);
    struct iovec iov[kMaxIov];
    for (int64_t i = 0; i < batch; ++i) {
      iov[i].iov_base = pages[done + i];
      iov[i].iov_len = kPageSize;
    }
    ssize_t want = static_cast<ssize_t>(batch) * static_cast<ssize_t>(kPageSize);
    ssize_t got = ::preadv(state->fd, iov, static_cast<int>(batch),
                           static_cast<off_t>(first + done) * kPageSize);
    if (got != want) {
      return Status::IoError(ErrnoMessage("preadv", state->path));
    }
    done += batch;
  }
  auto& counter = prefetch ? prefetch_reads_ : page_reads_;
  counter.fetch_add(n, std::memory_order_relaxed);
  return Status::Ok();
}

Status DiskManager::WritePage(FileId file, PageId page, const void* buffer) {
  return WritePages(file, page, 1, buffer);
}

Status DiskManager::WritePages(FileId file, PageId first, int64_t n,
                               const void* buffer) {
  return RunWithRetry(
      [&] { return WritePagesOnce(file, first, n, buffer); });
}

Status DiskManager::WritePagesOnce(FileId file, PageId first, int64_t n,
                                   const void* buffer) {
  IOLAP_RETURN_IF_ERROR(Inject('w', file, first, n));
  IOLAP_ASSIGN_OR_RETURN(FileState * state, GetFile(file));
  if (n <= 0) {
    return Status::InvalidArgument("WritePages of a non-positive page count");
  }
  int64_t size = state->size_pages.load();
  if (first < 0 || first > size) {
    return Status::OutOfRange("write of page " + std::to_string(first) +
                              " would leave a hole in file of " +
                              std::to_string(size) + " pages");
  }
  ssize_t want = static_cast<ssize_t>(n) * static_cast<ssize_t>(kPageSize);
  ssize_t put = ::pwrite(state->fd, buffer, static_cast<size_t>(want),
                         static_cast<off_t>(first) * kPageSize);
  if (put != want) {
    return Status::IoError(ErrnoMessage("pwrite", state->path));
  }
  IOLAP_RETURN_IF_ERROR(GrowTo(state, first + n));
  page_writes_.fetch_add(n, std::memory_order_relaxed);
  return Status::Ok();
}

Status DiskManager::WritePagesGather(FileId file, PageId first,
                                     const std::byte* const* pages,
                                     int64_t n) {
  return RunWithRetry(
      [&] { return WritePagesGatherOnce(file, first, pages, n); });
}

Status DiskManager::WritePagesGatherOnce(FileId file, PageId first,
                                         const std::byte* const* pages,
                                         int64_t n) {
  IOLAP_RETURN_IF_ERROR(Inject('w', file, first, n));
  IOLAP_ASSIGN_OR_RETURN(FileState * state, GetFile(file));
  if (n <= 0) {
    return Status::InvalidArgument("gather write of a non-positive count");
  }
  int64_t size = state->size_pages.load();
  if (first < 0 || first > size) {
    return Status::OutOfRange("gather write at page " + std::to_string(first) +
                              " would leave a hole in file of " +
                              std::to_string(size) + " pages");
  }
  int64_t done = 0;
  while (done < n) {
    int64_t batch = std::min(n - done, kMaxIov);
    struct iovec iov[kMaxIov];
    for (int64_t i = 0; i < batch; ++i) {
      iov[i].iov_base = const_cast<std::byte*>(pages[done + i]);
      iov[i].iov_len = kPageSize;
    }
    ssize_t want = static_cast<ssize_t>(batch) * static_cast<ssize_t>(kPageSize);
    ssize_t put = ::pwritev(state->fd, iov, static_cast<int>(batch),
                            static_cast<off_t>(first + done) * kPageSize);
    if (put != want) {
      return Status::IoError(ErrnoMessage("pwritev", state->path));
    }
    done += batch;
  }
  IOLAP_RETURN_IF_ERROR(GrowTo(state, first + n));
  page_writes_.fetch_add(n, std::memory_order_relaxed);
  return Status::Ok();
}

Status DiskManager::Preallocate(FileId file, int64_t pages) {
  IOLAP_ASSIGN_OR_RETURN(FileState * state, GetFile(file));
  if (pages < 0) {
    return Status::InvalidArgument("Preallocate to a negative size");
  }
  if (pages <= state->size_pages.load()) return Status::Ok();
  if (::ftruncate(state->fd, static_cast<off_t>(pages) * kPageSize) != 0) {
    return Status::IoError(ErrnoMessage("ftruncate", state->path));
  }
  return GrowTo(state, pages);
}

Result<int64_t> DiskManager::SizeInPages(FileId file) const {
  IOLAP_ASSIGN_OR_RETURN(FileState * state, GetFile(file));
  return state->size_pages.load();
}

Result<int> DiskManager::RawFd(FileId file) const {
  IOLAP_ASSIGN_OR_RETURN(FileState * state, GetFile(file));
  return state->fd;
}

Status DiskManager::Truncate(FileId file, int64_t pages) {
  std::unique_lock lock(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("unknown file id " + std::to_string(file));
  }
  FileState& state = *it->second;
  if (pages < 0 || pages > state.size_pages.load()) {
    return Status::OutOfRange("truncate to " + std::to_string(pages) +
                              " pages invalid for file of " +
                              std::to_string(state.size_pages.load()) +
                              " pages");
  }
  if (::ftruncate(state.fd, static_cast<off_t>(pages) * kPageSize) != 0) {
    return Status::IoError(ErrnoMessage("ftruncate", state.path));
  }
  state.size_pages.store(pages);
  return Status::Ok();
}

Status DiskManager::DeleteFile(FileId file) {
  std::unique_lock lock(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("unknown file id " + std::to_string(file));
  }
  ::close(it->second->fd);
  ::unlink(it->second->path.c_str());
  files_.erase(it);
  return Status::Ok();
}

Status DiskManager::ExportPages(FileId file, int64_t pages,
                                const std::string& dest_path) {
  IOLAP_ASSIGN_OR_RETURN(FileState * state, GetFile(file));
  if (pages < 0 || pages > state->size_pages.load()) {
    return Status::OutOfRange("export of " + std::to_string(pages) +
                              " pages from file of " +
                              std::to_string(state->size_pages.load()) +
                              " pages");
  }
  int dest = ::open(dest_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (dest < 0) {
    return Status::IoError(ErrnoMessage("open", dest_path));
  }
  std::vector<char> buffer(static_cast<size_t>(kCheckpointChunkPages) *
                           kPageSize);
  Status st = Status::Ok();
  for (int64_t done = 0; done < pages && st.ok();) {
    int64_t batch = std::min(pages - done, kCheckpointChunkPages);
    st = Inject('c', file, done, batch);
    if (!st.ok()) break;
    ssize_t want = static_cast<ssize_t>(batch) * kPageSize;
    ssize_t got = ::pread(state->fd, buffer.data(),
                          static_cast<size_t>(want),
                          static_cast<off_t>(done) * kPageSize);
    if (got != want) {
      st = Status::IoError(ErrnoMessage("pread", state->path));
      break;
    }
    ssize_t put = ::pwrite(dest, buffer.data(), static_cast<size_t>(want),
                           static_cast<off_t>(done) * kPageSize);
    if (put != want) {
      st = Status::IoError(ErrnoMessage("pwrite", dest_path));
      break;
    }
    done += batch;
  }
  if (st.ok() && ::fsync(dest) != 0) {
    st = Status::IoError(ErrnoMessage("fsync", dest_path));
  }
  ::close(dest);
  if (!st.ok()) ::unlink(dest_path.c_str());
  return st;
}

Status DiskManager::ImportPages(FileId file, const std::string& src_path,
                                int64_t pages) {
  IOLAP_ASSIGN_OR_RETURN(FileState * state, GetFile(file));
  if (pages < 0) {
    return Status::InvalidArgument("import of a negative page count");
  }
  if (state->size_pages.load() != 0) {
    return Status::FailedPrecondition("import into a non-empty file " +
                                      state->path);
  }
  int src = ::open(src_path.c_str(), O_RDONLY);
  if (src < 0) {
    return Status::IoError(ErrnoMessage("open", src_path));
  }
  std::vector<char> buffer(static_cast<size_t>(kCheckpointChunkPages) *
                           kPageSize);
  Status st = Status::Ok();
  for (int64_t done = 0; done < pages && st.ok();) {
    int64_t batch = std::min(pages - done, kCheckpointChunkPages);
    st = Inject('c', file, done, batch);
    if (!st.ok()) break;
    ssize_t want = static_cast<ssize_t>(batch) * kPageSize;
    ssize_t got = ::pread(src, buffer.data(), static_cast<size_t>(want),
                          static_cast<off_t>(done) * kPageSize);
    if (got != want) {
      st = Status::IoError(ErrnoMessage("pread", src_path));
      break;
    }
    ssize_t put = ::pwrite(state->fd, buffer.data(),
                           static_cast<size_t>(want),
                           static_cast<off_t>(done) * kPageSize);
    if (put != want) {
      st = Status::IoError(ErrnoMessage("pwrite", state->path));
      break;
    }
    done += batch;
  }
  ::close(src);
  if (st.ok()) st = GrowTo(state, pages);
  return st;
}

}  // namespace iolap
