#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>

namespace iolap {

namespace {

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " failed for " + path + ": " + std::strerror(errno);
}

}  // namespace

DiskManager::DiskManager(std::string directory)
    : directory_(std::move(directory)) {
  ::mkdir(directory_.c_str(), 0755);
}

DiskManager::~DiskManager() {
  for (auto& [id, state] : files_) {
    if (state->fd >= 0) ::close(state->fd);
    ::unlink(state->path.c_str());
  }
}

Result<FileId> DiskManager::CreateFile(const std::string& hint) {
  std::unique_lock lock(mu_);
  FileId id = next_file_id_++;
  std::string path =
      directory_ + "/f" + std::to_string(id) + "_" + hint + ".dat";
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("open", path));
  }
  auto state = std::make_unique<FileState>();
  state->fd = fd;
  state->path = std::move(path);
  files_[id] = std::move(state);
  return id;
}

Result<DiskManager::FileState*> DiskManager::GetFile(FileId file) const {
  std::shared_lock lock(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("unknown file id " + std::to_string(file));
  }
  return it->second.get();
}

Status DiskManager::ReadPage(FileId file, PageId page, void* buffer) {
  if (fault_injector_) {
    IOLAP_RETURN_IF_ERROR(fault_injector_('r', file, page));
  }
  IOLAP_ASSIGN_OR_RETURN(FileState * state, GetFile(file));
  if (page < 0 || page >= state->size_pages.load()) {
    return Status::OutOfRange(
        "read of page " + std::to_string(page) + " beyond file of " +
        std::to_string(state->size_pages.load()) + " pages");
  }
  ssize_t n = ::pread(state->fd, buffer, kPageSize,
                      static_cast<off_t>(page) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError(ErrnoMessage("pread", state->path));
  }
  page_reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status DiskManager::WritePage(FileId file, PageId page, const void* buffer) {
  if (fault_injector_) {
    IOLAP_RETURN_IF_ERROR(fault_injector_('w', file, page));
  }
  IOLAP_ASSIGN_OR_RETURN(FileState * state, GetFile(file));
  int64_t size = state->size_pages.load();
  if (page < 0 || page > size) {
    return Status::OutOfRange("write of page " + std::to_string(page) +
                              " would leave a hole in file of " +
                              std::to_string(size) + " pages");
  }
  ssize_t n = ::pwrite(state->fd, buffer, kPageSize,
                       static_cast<off_t>(page) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError(ErrnoMessage("pwrite", state->path));
  }
  // Appends to one file come from a single thread (see the class comment),
  // so this read-compare-store does not race with another append.
  if (page == size) state->size_pages.store(size + 1);
  page_writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Result<int64_t> DiskManager::SizeInPages(FileId file) const {
  IOLAP_ASSIGN_OR_RETURN(FileState * state, GetFile(file));
  return state->size_pages.load();
}

Status DiskManager::Truncate(FileId file, int64_t pages) {
  std::unique_lock lock(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("unknown file id " + std::to_string(file));
  }
  FileState& state = *it->second;
  if (pages < 0 || pages > state.size_pages.load()) {
    return Status::OutOfRange("truncate to " + std::to_string(pages) +
                              " pages invalid for file of " +
                              std::to_string(state.size_pages.load()) +
                              " pages");
  }
  if (::ftruncate(state.fd, static_cast<off_t>(pages) * kPageSize) != 0) {
    return Status::IoError(ErrnoMessage("ftruncate", state.path));
  }
  state.size_pages.store(pages);
  return Status::Ok();
}

Status DiskManager::DeleteFile(FileId file) {
  std::unique_lock lock(mu_);
  auto it = files_.find(file);
  if (it == files_.end()) {
    return Status::NotFound("unknown file id " + std::to_string(file));
  }
  ::close(it->second->fd);
  ::unlink(it->second->path.c_str());
  files_.erase(it);
  return Status::Ok();
}

}  // namespace iolap
