#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"

namespace iolap {

PageGuard::PageGuard(BufferPool* pool, int32_t frame)
    : pool_(pool), frame_(frame) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
  other.frame_ = -1;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = -1;
  }
  return *this;
}

std::byte* PageGuard::data() { return pool_->FrameData(frame_); }
const std::byte* PageGuard::data() const { return pool_->FrameData(frame_); }

void PageGuard::MarkDirty() { pool_->SetDirty(frame_); }

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = -1;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  occupancy_gauge_ = GlobalGauge("pool.occupancy");
  hits_counter_ = GlobalCounter("pool.hits");
  misses_counter_ = GlobalCounter("pool.misses");
  evictions_counter_ = GlobalCounter("pool.evictions");
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    frames_[i].data = std::make_unique<std::byte[]>(kPageSize);
    free_frames_.push_back(static_cast<int32_t>(capacity_ - 1 - i));
  }
}

BufferPool::~BufferPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  drain_cv_.notify_all();
  if (prefetcher_.joinable()) prefetcher_.join();
}

size_t BufferPool::pinned_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const Frame& f : frames_) {
    if (f.pin_count > 0) ++n;
  }
  return n;
}

uint64_t BufferPool::FileEpoch(FileId file) const {
  auto it = file_epochs_.find(file);
  return it == file_epochs_.end() ? 0 : it->second;
}

Result<int32_t> BufferPool::FindVictim() {
  if (!free_frames_.empty()) {
    int32_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool of " + std::to_string(capacity_) +
        " pages has every frame pinned");
  }
  int32_t idx = lru_.front();
  lru_.pop_front();
  Frame& frame = frames_[idx];
  frame.in_lru = false;
  IOLAP_RETURN_IF_ERROR(FlushFrame(frame));
  page_table_.erase(Key{frame.file, frame.page});
  ++stats_.evictions;
  if (evictions_counter_ != nullptr) evictions_counter_->Add(1);
  if (frame.prefetched) {
    ++stats_.prefetch_wasted;
    ++window_prefetch_wasted_;
    --prefetched_unconsumed_;
    frame.prefetched = false;
  }
  frame.file = kInvalidFileId;
  frame.page = -1;
  return idx;
}

int32_t BufferPool::FindPrefetchVictim() {
  if (!free_frames_.empty()) {
    int32_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  // Read-ahead must never displace a demand-loaded page (that could inflate
  // the demand miss count the cost model pins). Beyond the free list it
  // recycles at most the coldest frame, and only when that frame is itself
  // a still-unconsumed prefetch — i.e. an abandoned hint that outlived the
  // pool's whole demand working set. Recycling *recent* prefetches instead
  // would let interleaved scan streams thrash each other's read-ahead on a
  // saturated pool, paying a physical read per page yet servicing nearly
  // every demand miss from disk anyway.
  if (lru_.empty() || !frames_[lru_.front()].prefetched) return -1;
  int32_t idx = lru_.front();
  lru_.pop_front();
  Frame& frame = frames_[idx];
  frame.in_lru = false;
  page_table_.erase(Key{frame.file, frame.page});
  ++stats_.evictions;
  if (evictions_counter_ != nullptr) evictions_counter_->Add(1);
  ++stats_.prefetch_wasted;
  ++window_prefetch_wasted_;
  --prefetched_unconsumed_;
  frame.prefetched = false;
  frame.file = kInvalidFileId;
  frame.page = -1;
  return idx;
}

Status BufferPool::FlushFrame(Frame& frame) {
  if (frame.dirty) {
    IOLAP_RETURN_IF_ERROR(
        disk_->WritePage(frame.file, frame.page, frame.data.get()));
    frame.dirty = false;
    ++stats_.dirty_writebacks;
  }
  return Status::Ok();
}

Status BufferPool::FlushFramesBatched(std::vector<int32_t>& frame_indices) {
  std::sort(frame_indices.begin(), frame_indices.end(),
            [this](int32_t a, int32_t b) {
              const Frame& fa = frames_[a];
              const Frame& fb = frames_[b];
              if (fa.file != fb.file) return fa.file < fb.file;
              return fa.page < fb.page;
            });
  std::vector<const std::byte*> pages;
  size_t i = 0;
  while (i < frame_indices.size()) {
    size_t j = i + 1;
    while (j < frame_indices.size() &&
           frames_[frame_indices[j]].file == frames_[frame_indices[i]].file &&
           frames_[frame_indices[j]].page ==
               frames_[frame_indices[j - 1]].page + 1) {
      ++j;
    }
    pages.clear();
    for (size_t k = i; k < j; ++k) {
      pages.push_back(frames_[frame_indices[k]].data.get());
    }
    const Frame& head = frames_[frame_indices[i]];
    IOLAP_RETURN_IF_ERROR(disk_->WritePagesGather(
        head.file, head.page, pages.data(), static_cast<int64_t>(j - i)));
    for (size_t k = i; k < j; ++k) {
      frames_[frame_indices[k]].dirty = false;
    }
    stats_.dirty_writebacks += static_cast<int64_t>(j - i);
    ++stats_.writeback_batches;
    i = j;
  }
  return Status::Ok();
}

Result<PageGuard> BufferPool::Pin(FileId file, PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(Key{file, page});
  if (it == page_table_.end() && read_ahead_pages() > 0 &&
      queue_depth_.load(std::memory_order_relaxed) > 0) {
    // The demand stream caught up with a hint the prefetcher hasn't run
    // yet. Claim the request and service it inline — the block transfer
    // still replaces the page-at-a-time reads even when no spare core ever
    // got to it. The lock-free depth check keeps misses off queue_mu_ when
    // the queue is empty (the steady state once gating engages); a stale
    // zero only defers the claim to the worker.
    if (TryServiceQueuedPrefetch(file, page)) {
      it = page_table_.find(Key{file, page});
    }
  }
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    if (frame.prefetched) {
      // First consumption of a read-ahead frame: charge the demand read the
      // serial pipeline would have issued here (see IoStats).
      frame.prefetched = false;
      ++stats_.prefetch_hits;
      ++window_prefetch_hits_;
      --prefetched_unconsumed_;
      disk_->ChargeDemandRead();
    } else {
      ++stats_.hits;
    }
    if (hits_counter_ != nullptr) hits_counter_->Add(1);
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return PageGuard(this, it->second);
  }
  ++stats_.misses;
  if (misses_counter_ != nullptr) misses_counter_->Add(1);
  IOLAP_ASSIGN_OR_RETURN(int32_t idx, FindVictim());
  Frame& frame = frames_[idx];
  Status read = disk_->ReadPage(file, page, frame.data.get());
  if (!read.ok()) {
    free_frames_.push_back(idx);
    TouchOccupancyGauge();
    return read;
  }
  frame.file = file;
  frame.page = page;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.prefetched = false;
  page_table_[Key{file, page}] = idx;
  TouchOccupancyGauge();
  return PageGuard(this, idx);
}

Result<PageGuard> BufferPool::PinNew(FileId file, PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  IOLAP_ASSIGN_OR_RETURN(int64_t size, disk_->SizeInPages(file));
  if (page != size) {
    return Status::InvalidArgument(
        "PinNew page " + std::to_string(page) + " != file size " +
        std::to_string(size));
  }
  if (page_table_.count(Key{file, page}) != 0) {
    return Status::Internal("PinNew page already cached");
  }
  IOLAP_ASSIGN_OR_RETURN(int32_t idx, FindVictim());
  Frame& frame = frames_[idx];
  std::memset(frame.data.get(), 0, kPageSize);
  // Materialize the page on disk immediately so the file grows densely and
  // later reads of it are well-defined even before the first flush.
  Status write = disk_->WritePage(file, page, frame.data.get());
  if (!write.ok()) {
    free_frames_.push_back(idx);
    TouchOccupancyGauge();
    return write;
  }
  frame.file = file;
  frame.page = page;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.prefetched = false;
  page_table_[Key{file, page}] = idx;
  TouchOccupancyGauge();
  return PageGuard(this, idx);
}

void BufferPool::Unpin(int32_t frame_index) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& frame = frames_[frame_index];
  if (--frame.pin_count == 0) {
    lru_.push_back(frame_index);
    frame.lru_pos = std::prev(lru_.end());
    frame.in_lru = true;
  }
}

void BufferPool::ConfigureReadAhead(int pages) {
  read_ahead_pages_.store(pages < 0 ? 0 : pages, std::memory_order_relaxed);
  if (pages <= 0) return;
  std::lock_guard<std::mutex> lock(queue_mu_);
  if (!stop_ && !prefetcher_.joinable()) {
    prefetcher_ = std::thread(&BufferPool::PrefetcherLoop, this);
  }
}

void BufferPool::Prefetch(FileId file, PageId first, int64_t count) {
  if (count <= 0 || read_ahead_pages() == 0) return;
  // Fast path: while the effectiveness gate is closed, drop the hint
  // without touching mu_ — a workload whose hints are useless issues
  // thousands of them, and each mutex acquisition contends with demand
  // pins. Every 64th drop falls through to the locked path so the decay
  // bookkeeping (and the gate re-open probe) still advances.
  if (gate_closed_.load(std::memory_order_relaxed)) {
    const int64_t n =
        gate_fast_drops_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % 64 != 0) return;
  }
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Fold drops batched by the lock-free fast path into the counters the
    // decay logic below reads.
    const int64_t fast = gate_fast_drops_.exchange(0, std::memory_order_relaxed);
    if (fast > 0) {
      stats_.prefetch_gated += fast;
      gated_since_decay_ += fast;
    }
    // Hopeless hints are dropped at the door: with no free frame and no
    // abandoned prefetch to recycle, enqueueing would only buy a worker
    // wake-up that discovers the same thing (read-ahead never displaces
    // demand pages, see FindPrefetchVictim).
    bool gated = free_frames_.empty() &&
                 (lru_.empty() || !frames_[lru_.front()].prefetched);
    // Headroom gate: with less than a small threshold of frames read-ahead
    // may legally fill, servicing the hint mostly blocks demand pins on mu_
    // for the duration of a disk read — the regression small pools see.
    if (!gated) {
      const int64_t headroom =
          static_cast<int64_t>(free_frames_.size()) + prefetched_unconsumed_;
      gated = headroom < kPrefetchMinHeadroom;
    }
    // Effectiveness gate: once enough prefetches have been decided
    // (consumed or evicted unused), stop hinting while the rolling hit
    // rate sits under ~25% — below that, the wasted reads' disk traffic
    // and mutex holds cost more than the hidden latency buys (measured
    // break-even on the small-pool allocation benchmark). Only this gate
    // is published to the lock-free fast path: the frame-availability
    // gates above are transient and must be re-checked per hint.
    {
      const int64_t decided = window_prefetch_hits_ + window_prefetch_wasted_;
      const bool ineffective = decided >= kPrefetchGateMinSample &&
                               window_prefetch_hits_ * 4 < decided;
      gate_closed_.store(ineffective, std::memory_order_relaxed);
      gated = gated || ineffective;
    }
    if (gated) {
      ++stats_.prefetch_gated;
      // Decay the window while gated so a changed access pattern can
      // re-open the gate with a fresh probe.
      if (++gated_since_decay_ >= kPrefetchGateDecay) {
        window_prefetch_hits_ /= 2;
        window_prefetch_wasted_ /= 2;
        gated_since_decay_ = 0;
        const int64_t decided =
            window_prefetch_hits_ + window_prefetch_wasted_;
        gate_closed_.store(decided >= kPrefetchGateMinSample &&
                               window_prefetch_hits_ * 4 < decided,
                           std::memory_order_relaxed);
      }
      return;
    }
    epoch = file_epochs_[file];
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stop_ || !prefetcher_.joinable()) return;
    queue_.push_back(PrefetchRequest{file, first, count, epoch});
    queue_depth_.store(static_cast<int64_t>(queue_.size()),
                       std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
}

void BufferPool::PrefetcherLoop() {
  std::vector<std::byte> staging;
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (stop_) break;
    PrefetchRequest req = queue_.front();
    queue_.pop_front();
    queue_depth_.store(static_cast<int64_t>(queue_.size()),
                       std::memory_order_relaxed);
    ++in_service_;
    lock.unlock();
    ServicePrefetch(req, &staging);
    lock.lock();
    --in_service_;
    if (queue_.empty() && in_service_ == 0) drain_cv_.notify_all();
  }
}

void BufferPool::ServicePrefetch(const PrefetchRequest& req,
                                 std::vector<std::byte>* staging) {
  std::lock_guard<std::mutex> lock(mu_);
  ServicePrefetchLocked(req, staging);
}

bool BufferPool::TryServiceQueuedPrefetch(FileId file, PageId page) {
  PrefetchRequest req;
  bool found = false;
  {
    std::lock_guard<std::mutex> qlock(queue_mu_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->file == file && it->first <= page &&
          page < it->first + it->count) {
        req = *it;
        queue_.erase(it);
        queue_depth_.store(static_cast<int64_t>(queue_.size()),
                           std::memory_order_relaxed);
        found = true;
        break;
      }
    }
  }
  if (!found) return false;
  // Only the not-yet-demanded tail of the hint is still interesting.
  req.count = req.first + req.count - page;
  req.first = page;
  std::vector<std::byte> staging;
  ServicePrefetchLocked(req, &staging);
  return true;
}

void BufferPool::ServicePrefetchLocked(const PrefetchRequest& req,
                                       std::vector<std::byte>* staging) {
  if (FileEpoch(req.file) != req.epoch) return;  // file was evicted since
  auto size_or = disk_->SizeInPages(req.file);
  if (!size_or.ok()) return;
  PageId end = std::min<PageId>(req.first + req.count, size_or.value());
  PageId p = std::max<PageId>(req.first, 0);
  while (p < end) {
    if (page_table_.count(Key{req.file, p}) != 0) {
      ++p;
      continue;
    }
    PageId run_end = p + 1;
    while (run_end < end && page_table_.count(Key{req.file, run_end}) == 0) {
      ++run_end;
    }
    std::vector<int32_t> victims;
    while (static_cast<PageId>(victims.size()) < run_end - p) {
      int32_t v = FindPrefetchVictim();
      if (v < 0) break;
      victims.push_back(v);
    }
    if (victims.empty()) return;  // no room without displacing demand pages
    int64_t n = static_cast<int64_t>(victims.size());
    staging->resize(static_cast<size_t>(n) * kPageSize);
    if (!disk_->ReadPages(req.file, p, n, staging->data(), /*prefetch=*/true)
             .ok()) {
      // Fire-and-forget: drop the hint; a real fault resurfaces on demand.
      for (int32_t v : victims) free_frames_.push_back(v);
      return;
    }
    for (int64_t i = 0; i < n; ++i) {
      Frame& frame = frames_[victims[i]];
      std::memcpy(frame.data.get(), staging->data() + i * kPageSize,
                  kPageSize);
      frame.file = req.file;
      frame.page = p + i;
      frame.pin_count = 0;
      frame.dirty = false;
      frame.prefetched = true;
      ++prefetched_unconsumed_;
      lru_.push_back(victims[i]);
      frame.lru_pos = std::prev(lru_.end());
      frame.in_lru = true;
      page_table_[Key{req.file, frame.page}] = victims[i];
    }
    p += n;
  }
  TouchOccupancyGauge();
}

void BufferPool::DrainPrefetches() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  drain_cv_.wait(lock, [&] {
    return stop_ || (queue_.empty() && in_service_ == 0);
  });
}

Status BufferPool::FlushFile(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  if (batched_writeback()) {
    std::vector<int32_t> dirty;
    for (size_t i = 0; i < frames_.size(); ++i) {
      if (frames_[i].file == file && frames_[i].dirty) {
        dirty.push_back(static_cast<int32_t>(i));
      }
    }
    return FlushFramesBatched(dirty);
  }
  for (Frame& frame : frames_) {
    if (frame.file == file) IOLAP_RETURN_IF_ERROR(FlushFrame(frame));
  }
  return Status::Ok();
}

Status BufferPool::EvictFile(FileId file) {
  {
    // Cancel queued prefetches first (without mu_; see lock ordering note),
    // then bump the epoch so any request already popped by the worker is
    // dropped at its epoch check.
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [file](const PrefetchRequest& r) {
                                  return r.file == file;
                                }),
                 queue_.end());
    queue_depth_.store(static_cast<int64_t>(queue_.size()),
                       std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++file_epochs_[file];
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.file != file) continue;
    if (frame.pin_count > 0) {
      return Status::FailedPrecondition(
          "EvictFile: page " + std::to_string(frame.page) + " of file " +
          std::to_string(file) + " is pinned");
    }
    IOLAP_RETURN_IF_ERROR(FlushFrame(frame));
    ReleaseFrame(i);
  }
  TouchOccupancyGauge();
  return Status::Ok();
}

void BufferPool::ReleaseFrame(size_t frame_index) {
  Frame& frame = frames_[frame_index];
  page_table_.erase(Key{frame.file, frame.page});
  if (frame.in_lru) {
    lru_.erase(frame.lru_pos);
    frame.in_lru = false;
  }
  if (frame.prefetched) {
    ++stats_.prefetch_wasted;
    ++window_prefetch_wasted_;
    --prefetched_unconsumed_;
    frame.prefetched = false;
  }
  frame.file = kInvalidFileId;
  frame.page = -1;
  free_frames_.push_back(static_cast<int32_t>(frame_index));
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (batched_writeback()) {
    std::vector<int32_t> dirty;
    for (size_t i = 0; i < frames_.size(); ++i) {
      if (frames_[i].file != kInvalidFileId && frames_[i].dirty) {
        dirty.push_back(static_cast<int32_t>(i));
      }
    }
    return FlushFramesBatched(dirty);
  }
  for (Frame& frame : frames_) {
    if (frame.file != kInvalidFileId) IOLAP_RETURN_IF_ERROR(FlushFrame(frame));
  }
  return Status::Ok();
}

}  // namespace iolap
