#include "storage/buffer_pool.h"

#include <cstring>

namespace iolap {

PageGuard::PageGuard(BufferPool* pool, int32_t frame)
    : pool_(pool), frame_(frame) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
  other.frame_ = -1;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = -1;
  }
  return *this;
}

std::byte* PageGuard::data() { return pool_->FrameData(frame_); }
const std::byte* PageGuard::data() const { return pool_->FrameData(frame_); }

void PageGuard::MarkDirty() { pool_->SetDirty(frame_); }

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = -1;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    frames_[i].data = std::make_unique<std::byte[]>(kPageSize);
    free_frames_.push_back(static_cast<int32_t>(capacity_ - 1 - i));
  }
}

size_t BufferPool::pinned_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const Frame& f : frames_) {
    if (f.pin_count > 0) ++n;
  }
  return n;
}

Result<int32_t> BufferPool::FindVictim() {
  if (!free_frames_.empty()) {
    int32_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool of " + std::to_string(capacity_) +
        " pages has every frame pinned");
  }
  int32_t idx = lru_.front();
  lru_.pop_front();
  Frame& frame = frames_[idx];
  frame.in_lru = false;
  IOLAP_RETURN_IF_ERROR(FlushFrame(frame));
  page_table_.erase(Key{frame.file, frame.page});
  ++stats_.evictions;
  frame.file = kInvalidFileId;
  frame.page = -1;
  return idx;
}

Status BufferPool::FlushFrame(Frame& frame) {
  if (frame.dirty) {
    IOLAP_RETURN_IF_ERROR(
        disk_->WritePage(frame.file, frame.page, frame.data.get()));
    frame.dirty = false;
    ++stats_.dirty_writebacks;
  }
  return Status::Ok();
}

Result<PageGuard> BufferPool::Pin(FileId file, PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(Key{file, page});
  if (it != page_table_.end()) {
    ++stats_.hits;
    Frame& frame = frames_[it->second];
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return PageGuard(this, it->second);
  }
  ++stats_.misses;
  IOLAP_ASSIGN_OR_RETURN(int32_t idx, FindVictim());
  Frame& frame = frames_[idx];
  Status read = disk_->ReadPage(file, page, frame.data.get());
  if (!read.ok()) {
    free_frames_.push_back(idx);
    return read;
  }
  frame.file = file;
  frame.page = page;
  frame.pin_count = 1;
  frame.dirty = false;
  page_table_[Key{file, page}] = idx;
  return PageGuard(this, idx);
}

Result<PageGuard> BufferPool::PinNew(FileId file, PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  IOLAP_ASSIGN_OR_RETURN(int64_t size, disk_->SizeInPages(file));
  if (page != size) {
    return Status::InvalidArgument(
        "PinNew page " + std::to_string(page) + " != file size " +
        std::to_string(size));
  }
  if (page_table_.count(Key{file, page}) != 0) {
    return Status::Internal("PinNew page already cached");
  }
  IOLAP_ASSIGN_OR_RETURN(int32_t idx, FindVictim());
  Frame& frame = frames_[idx];
  std::memset(frame.data.get(), 0, kPageSize);
  // Materialize the page on disk immediately so the file grows densely and
  // later reads of it are well-defined even before the first flush.
  Status write = disk_->WritePage(file, page, frame.data.get());
  if (!write.ok()) {
    free_frames_.push_back(idx);
    return write;
  }
  frame.file = file;
  frame.page = page;
  frame.pin_count = 1;
  frame.dirty = false;
  page_table_[Key{file, page}] = idx;
  return PageGuard(this, idx);
}

void BufferPool::Unpin(int32_t frame_index) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& frame = frames_[frame_index];
  if (--frame.pin_count == 0) {
    lru_.push_back(frame_index);
    frame.lru_pos = std::prev(lru_.end());
    frame.in_lru = true;
  }
}

Status BufferPool::FlushFile(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& frame : frames_) {
    if (frame.file == file) IOLAP_RETURN_IF_ERROR(FlushFrame(frame));
  }
  return Status::Ok();
}

Status BufferPool::EvictFile(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.file != file) continue;
    if (frame.pin_count > 0) {
      return Status::FailedPrecondition(
          "EvictFile: page " + std::to_string(frame.page) + " of file " +
          std::to_string(file) + " is pinned");
    }
    IOLAP_RETURN_IF_ERROR(FlushFrame(frame));
    page_table_.erase(Key{frame.file, frame.page});
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    frame.file = kInvalidFileId;
    frame.page = -1;
    free_frames_.push_back(static_cast<int32_t>(i));
  }
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& frame : frames_) {
    if (frame.file != kInvalidFileId) IOLAP_RETURN_IF_ERROR(FlushFrame(frame));
  }
  return Status::Ok();
}

}  // namespace iolap
