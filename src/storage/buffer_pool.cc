#include "storage/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace iolap {

PageGuard::PageGuard(BufferPool* pool, int32_t frame)
    : pool_(pool), frame_(frame) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
  other.frame_ = -1;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = -1;
  }
  return *this;
}

std::byte* PageGuard::data() { return pool_->FrameData(frame_); }
const std::byte* PageGuard::data() const { return pool_->FrameData(frame_); }

void PageGuard::MarkDirty() { pool_->SetDirty(frame_); }

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = -1;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  occupancy_gauge_ = GlobalGauge("pool.occupancy");
  hits_counter_ = GlobalCounter("pool.hits");
  misses_counter_ = GlobalCounter("pool.misses");
  evictions_counter_ = GlobalCounter("pool.evictions");
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    frames_[i].data = std::make_unique<std::byte[]>(kPageSize);
    free_frames_.push_back(static_cast<int32_t>(capacity_ - 1 - i));
  }
}

BufferPool::~BufferPool() {
  // Drain plan-driven read-ahead first: wait out in-flight async reads
  // (the kernel writes into chunk buffers we own), then destroy the
  // backend without mu_ held — its teardown can deliver completions that
  // re-acquire mu_.
  {
    std::unique_lock<std::mutex> lock(mu_);
    plan_active_ = false;
    while (plan_outstanding_ > 0) plan_cv_.wait(lock);
  }
  async_reader_.reset();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  drain_cv_.notify_all();
  if (prefetcher_.joinable()) prefetcher_.join();
  // Write back any dirty frames still cached so destruction never silently
  // loses data (see the class-comment destruction contract). Best-effort:
  // a destructor cannot propagate Status, so failures are logged (and
  // assert in debug builds — a lost write here is a caller bug).
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& frame : frames_) {
    if (frame.file == kInvalidFileId || !frame.dirty) continue;
    Status flushed = FlushFrame(frame);
    if (!flushed.ok()) {
      std::fprintf(stderr,
                   "iolap: ~BufferPool failed to write back dirty page %lld "
                   "of file %d: %s\n",
                   static_cast<long long>(frame.page),
                   static_cast<int>(frame.file), flushed.ToString().c_str());
      assert(false && "~BufferPool lost a dirty page");
    }
  }
}

size_t BufferPool::pinned_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const Frame& f : frames_) {
    if (f.pin_count > 0) ++n;
  }
  return n;
}

uint64_t BufferPool::FileEpoch(FileId file) const {
  auto it = file_epochs_.find(file);
  return it == file_epochs_.end() ? 0 : it->second;
}

Result<int32_t> BufferPool::FindVictim() {
  if (!free_frames_.empty()) {
    int32_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  if (!plan_annex_.empty()) {
    // Planned read-ahead frames occupy only frames a serial run would have
    // free, so demand replacement reclaims them before touching the LRU —
    // this keeps the demand-page cache contents, the LRU order, and
    // therefore IoStats::page_reads identical to a serial run.
    int32_t idx = plan_annex_.front();
    plan_annex_.pop_front();
    Frame& frame = frames_[idx];
    frame.planned = false;
    page_table_.erase(Key{frame.file, frame.page});
    ++stats_.evictions;
    if (evictions_counter_ != nullptr) evictions_counter_->Add(1);
    ++stats_.prefetch_wasted;
    ++window_prefetch_wasted_;
    --prefetched_unconsumed_;
    frame.prefetched = false;
    frame.file = kInvalidFileId;
    frame.page = -1;
    return idx;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(
        "buffer pool of " + std::to_string(capacity_) +
        " pages has every frame pinned");
  }
  int32_t idx = lru_.front();
  lru_.pop_front();
  Frame& frame = frames_[idx];
  frame.in_lru = false;
  IOLAP_RETURN_IF_ERROR(FlushFrame(frame));
  page_table_.erase(Key{frame.file, frame.page});
  ++stats_.evictions;
  if (evictions_counter_ != nullptr) evictions_counter_->Add(1);
  if (frame.prefetched) {
    ++stats_.prefetch_wasted;
    ++window_prefetch_wasted_;
    --prefetched_unconsumed_;
    frame.prefetched = false;
  }
  frame.file = kInvalidFileId;
  frame.page = -1;
  return idx;
}

int32_t BufferPool::FindPrefetchVictim() {
  if (!free_frames_.empty()) {
    int32_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  // Read-ahead must never displace a demand-loaded page (that could inflate
  // the demand miss count the cost model pins). Beyond the free list it
  // recycles at most the coldest frame, and only when that frame is itself
  // a still-unconsumed prefetch — i.e. an abandoned hint that outlived the
  // pool's whole demand working set. Recycling *recent* prefetches instead
  // would let interleaved scan streams thrash each other's read-ahead on a
  // saturated pool, paying a physical read per page yet servicing nearly
  // every demand miss from disk anyway.
  if (lru_.empty() || !frames_[lru_.front()].prefetched) return -1;
  int32_t idx = lru_.front();
  lru_.pop_front();
  Frame& frame = frames_[idx];
  frame.in_lru = false;
  page_table_.erase(Key{frame.file, frame.page});
  ++stats_.evictions;
  if (evictions_counter_ != nullptr) evictions_counter_->Add(1);
  ++stats_.prefetch_wasted;
  ++window_prefetch_wasted_;
  --prefetched_unconsumed_;
  frame.prefetched = false;
  frame.file = kInvalidFileId;
  frame.page = -1;
  return idx;
}

Status BufferPool::FlushFrame(Frame& frame) {
  if (frame.dirty) {
    IOLAP_RETURN_IF_ERROR(
        disk_->WritePage(frame.file, frame.page, frame.data.get()));
    frame.dirty = false;
    ++stats_.dirty_writebacks;
  }
  return Status::Ok();
}

Status BufferPool::FlushFramesBatched(std::vector<int32_t>& frame_indices) {
  std::sort(frame_indices.begin(), frame_indices.end(),
            [this](int32_t a, int32_t b) {
              const Frame& fa = frames_[a];
              const Frame& fb = frames_[b];
              if (fa.file != fb.file) return fa.file < fb.file;
              return fa.page < fb.page;
            });
  std::vector<const std::byte*> pages;
  size_t i = 0;
  while (i < frame_indices.size()) {
    size_t j = i + 1;
    while (j < frame_indices.size() &&
           frames_[frame_indices[j]].file == frames_[frame_indices[i]].file &&
           frames_[frame_indices[j]].page ==
               frames_[frame_indices[j - 1]].page + 1) {
      ++j;
    }
    pages.clear();
    for (size_t k = i; k < j; ++k) {
      pages.push_back(frames_[frame_indices[k]].data.get());
    }
    const Frame& head = frames_[frame_indices[i]];
    IOLAP_RETURN_IF_ERROR(disk_->WritePagesGather(
        head.file, head.page, pages.data(), static_cast<int64_t>(j - i)));
    for (size_t k = i; k < j; ++k) {
      frames_[frame_indices[k]].dirty = false;
    }
    stats_.dirty_writebacks += static_cast<int64_t>(j - i);
    ++stats_.writeback_batches;
    i = j;
  }
  return Status::Ok();
}

Result<PageGuard> BufferPool::Pin(FileId file, PageId page) {
  std::unique_lock<std::mutex> lock(mu_);
  const Key key{file, page};
  auto it = page_table_.find(key);
  if (it == page_table_.end() && read_ahead_pages() > 0 &&
      queue_depth_.load(std::memory_order_relaxed) > 0) {
    // The demand stream caught up with a hint the prefetcher hasn't run
    // yet. Claim the request and service it inline — the block transfer
    // still replaces the page-at-a-time reads even when no spare core ever
    // got to it. The lock-free depth check keeps misses off queue_mu_ when
    // the queue is empty (the steady state once gating engages); a stale
    // zero only defers the claim to the worker.
    if (TryServiceQueuedPrefetch(file, page)) {
      it = page_table_.find(key);
    }
  }
  if (it == page_table_.end() && !plan_inflight_pages_.empty() &&
      plan_inflight_pages_.count(key) != 0) {
    // The demand stream overtook an in-flight planned read of this page.
    // Wait for the chunk to resolve instead of issuing a duplicate
    // physical read; the completion handler always resolves the chunk and
    // notifies (on failure the page simply stays absent and the demand
    // read below proceeds).
    do {
      plan_cv_.wait(lock);
    } while (plan_inflight_pages_.count(key) != 0);
    it = page_table_.find(key);
  }
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    if (frame.prefetched) {
      // First consumption of a read-ahead frame: charge the demand read the
      // serial pipeline would have issued here (see IoStats).
      frame.prefetched = false;
      if (frame.planned) {
        plan_annex_.erase(frame.lru_pos);
        frame.planned = false;
      }
      ++stats_.prefetch_hits;
      ++window_prefetch_hits_;
      --prefetched_unconsumed_;
      disk_->ChargeDemandRead();
    } else {
      ++stats_.hits;
    }
    if (hits_counter_ != nullptr) hits_counter_->Add(1);
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    if (plan_active_ && !plan_sync_) PlanNotifyPinLocked(file, page);
    return PageGuard(this, it->second);
  }
  auto pending =
      plan_pending_.empty() ? plan_pending_.end() : plan_pending_.find(key);
  if (pending != plan_pending_.end()) {
    // The planned read completed while the pool was full; its bytes are
    // parked in the chunk buffer. Copy them out through the normal victim
    // path (identical replacement decisions to a serial demand read) and
    // charge the demand read — no new physical I/O.
    const uint64_t tag = pending->second.chunk_tag;
    const int64_t offset = pending->second.offset;
    IOLAP_ASSIGN_OR_RETURN(int32_t idx, FindVictim());
    Frame& frame = frames_[idx];
    PlanChunk& chunk = *plan_chunks_.at(tag);
    if (!chunk.page_bufs.empty()) {
      // Synchronous chunk: pages were scatter-read into individual
      // buffers, so adopt the buffer instead of copying it.
      frame.data.swap(chunk.page_bufs[static_cast<size_t>(offset)]);
    } else {
      std::memcpy(frame.data.get(), chunk.data.get() + offset * kPageSize,
                  kPageSize);
    }
    plan_pending_.erase(pending);
    --chunk.pending;
    MaybeFreeChunkLocked(tag);
    ++stats_.prefetch_hits;
    disk_->ChargeDemandRead();
    if (hits_counter_ != nullptr) hits_counter_->Add(1);
    frame.file = file;
    frame.page = page;
    frame.pin_count = 1;
    frame.dirty = false;
    frame.prefetched = false;
    page_table_[key] = idx;
    TouchOccupancyGauge();
    if (plan_active_ && !plan_sync_) PlanNotifyPinLocked(file, page);
    return PageGuard(this, idx);
  }
  if (plan_active_) {
    // The page is planned but not yet read (synchronous plan mode, or the
    // demand stream outran the async frontier). Pull the whole upcoming
    // chunk in with one batched transfer instead of a single-page demand
    // read.
    const int32_t idx = TryServePlannedChunkLocked(file, page);
    if (idx >= 0) {
      if (hits_counter_ != nullptr) hits_counter_->Add(1);
      // The serve already advanced next_submit; the consume cursor only
      // feeds the async pump.
      if (!plan_sync_) PlanNotifyPinLocked(file, page);
      return PageGuard(this, idx);
    }
  }
  ++stats_.misses;
  if (misses_counter_ != nullptr) misses_counter_->Add(1);
  IOLAP_ASSIGN_OR_RETURN(int32_t idx, FindVictim());
  Frame& frame = frames_[idx];
  Status read = disk_->ReadPage(file, page, frame.data.get());
  if (!read.ok()) {
    free_frames_.push_back(idx);
    TouchOccupancyGauge();
    return read;
  }
  frame.file = file;
  frame.page = page;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.prefetched = false;
  page_table_[key] = idx;
  TouchOccupancyGauge();
  if (plan_active_ && !plan_sync_) PlanNotifyPinLocked(file, page);
  return PageGuard(this, idx);
}

Result<PageGuard> BufferPool::PinNew(FileId file, PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  IOLAP_ASSIGN_OR_RETURN(int64_t size, disk_->SizeInPages(file));
  if (page != size) {
    return Status::InvalidArgument(
        "PinNew page " + std::to_string(page) + " != file size " +
        std::to_string(size));
  }
  if (page_table_.count(Key{file, page}) != 0) {
    return Status::Internal("PinNew page already cached");
  }
  IOLAP_ASSIGN_OR_RETURN(int32_t idx, FindVictim());
  Frame& frame = frames_[idx];
  std::memset(frame.data.get(), 0, kPageSize);
  // Materialize the page on disk immediately so the file grows densely and
  // later reads of it are well-defined even before the first flush.
  Status write = disk_->WritePage(file, page, frame.data.get());
  if (!write.ok()) {
    free_frames_.push_back(idx);
    TouchOccupancyGauge();
    return write;
  }
  frame.file = file;
  frame.page = page;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.prefetched = false;
  page_table_[Key{file, page}] = idx;
  TouchOccupancyGauge();
  return PageGuard(this, idx);
}

void BufferPool::Unpin(int32_t frame_index) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& frame = frames_[frame_index];
  if (--frame.pin_count == 0) {
    lru_.push_back(frame_index);
    frame.lru_pos = std::prev(lru_.end());
    frame.in_lru = true;
  }
}

void BufferPool::ConfigureReadAhead(int pages) {
  read_ahead_pages_.store(pages < 0 ? 0 : pages, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(queue_mu_);
  if (pages <= 0) {
    // Disabling must also purge hints already queued, or the worker keeps
    // issuing physical prefetch reads after the caller turned read-ahead
    // off. (Repeat disables find an empty queue — idempotent.)
    queue_.clear();
    queue_depth_.store(0, std::memory_order_relaxed);
    if (in_service_ == 0) drain_cv_.notify_all();
    return;
  }
  // Re-enables after a disable reuse the worker thread; only the first
  // enable starts it.
  if (!stop_ && !prefetcher_.joinable()) {
    prefetcher_ = std::thread(&BufferPool::PrefetcherLoop, this);
  }
}

void BufferPool::Prefetch(FileId file, PageId first, int64_t count) {
  if (count <= 0 || read_ahead_pages() == 0) return;
  // Fast path: while the effectiveness gate is closed, drop the hint
  // without touching mu_ — a workload whose hints are useless issues
  // thousands of them, and each mutex acquisition contends with demand
  // pins. Every 64th drop falls through to the locked path so the decay
  // bookkeeping (and the gate re-open probe) still advances.
  bool folded_self = false;
  if (gate_closed_.load(std::memory_order_relaxed)) {
    const int64_t n =
        gate_fast_drops_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n % 64 != 0) return;
    // This hint pre-counted itself as a fast-path drop; if the gates turn
    // out to have re-opened it is serviced after all and the count must be
    // undone below.
    folded_self = true;
  }
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Fold drops batched by the lock-free fast path into the counters the
    // decay logic below reads.
    const int64_t fast = gate_fast_drops_.exchange(0, std::memory_order_relaxed);
    if (fast > 0) {
      stats_.prefetch_gated += fast;
      gated_since_decay_ += fast;
    }
    // Plan suppression: while an access plan covers this file, heuristic
    // hints for it are redundant — the planner already schedules every
    // page the reader will touch.
    bool gated = plan_active_ && plan_files_.count(file) != 0;
    // Hopeless hints are dropped at the door: with no free frame and no
    // abandoned prefetch to recycle, enqueueing would only buy a worker
    // wake-up that discovers the same thing (read-ahead never displaces
    // demand pages, see FindPrefetchVictim).
    gated = gated || (free_frames_.empty() &&
                      (lru_.empty() || !frames_[lru_.front()].prefetched));
    // Headroom gate: with less than a small threshold of frames read-ahead
    // may legally fill, servicing the hint mostly blocks demand pins on mu_
    // for the duration of a disk read — the regression small pools see.
    if (!gated) {
      const int64_t headroom =
          static_cast<int64_t>(free_frames_.size()) + prefetched_unconsumed_;
      gated = headroom < kPrefetchMinHeadroom;
    }
    // Effectiveness gate: once enough prefetches have been decided
    // (consumed or evicted unused), stop hinting while the rolling hit
    // rate sits under ~25% — below that, the wasted reads' disk traffic
    // and mutex holds cost more than the hidden latency buys (measured
    // break-even on the small-pool allocation benchmark). Only this gate
    // is published to the lock-free fast path: the frame-availability
    // gates above are transient and must be re-checked per hint.
    {
      const int64_t decided = window_prefetch_hits_ + window_prefetch_wasted_;
      const bool ineffective = decided >= kPrefetchGateMinSample &&
                               window_prefetch_hits_ * 4 < decided;
      gate_closed_.store(ineffective, std::memory_order_relaxed);
      gated = gated || ineffective;
    }
    if (gated) {
      ++stats_.prefetch_gated;
      // Decay the window while gated so a changed access pattern can
      // re-open the gate with a fresh probe.
      if (++gated_since_decay_ >= kPrefetchGateDecay) {
        window_prefetch_hits_ /= 2;
        window_prefetch_wasted_ /= 2;
        gated_since_decay_ = 0;
        const int64_t decided =
            window_prefetch_hits_ + window_prefetch_wasted_;
        gate_closed_.store(decided >= kPrefetchGateMinSample &&
                               window_prefetch_hits_ * 4 < decided,
                           std::memory_order_relaxed);
      }
      return;
    }
    if (folded_self) {
      // The fold above (ours or a racing one) counted this hint's own
      // fast-path increment as a gated drop, but the hint is about to be
      // enqueued — undo it so prefetch_gated counts only dropped hints and
      // the decay window does not advance for a serviced one.
      --stats_.prefetch_gated;
      if (gated_since_decay_ > 0) --gated_since_decay_;
    }
    epoch = file_epochs_[file];
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stop_ || !prefetcher_.joinable()) return;
    queue_.push_back(PrefetchRequest{file, first, count, epoch});
    queue_depth_.store(static_cast<int64_t>(queue_.size()),
                       std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
}

void BufferPool::PrefetcherLoop() {
  std::vector<std::byte> staging;
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return stop_ || (!paused_ && !queue_.empty()); });
    if (stop_) break;
    PrefetchRequest req = queue_.front();
    queue_.pop_front();
    queue_depth_.store(static_cast<int64_t>(queue_.size()),
                       std::memory_order_relaxed);
    ++in_service_;
    lock.unlock();
    ServicePrefetch(req, &staging);
    lock.lock();
    --in_service_;
    if (queue_.empty() && in_service_ == 0) drain_cv_.notify_all();
  }
}

void BufferPool::ServicePrefetch(const PrefetchRequest& req,
                                 std::vector<std::byte>* staging) {
  std::lock_guard<std::mutex> lock(mu_);
  ServicePrefetchLocked(req, staging);
}

bool BufferPool::TryServiceQueuedPrefetch(FileId file, PageId page) {
  PrefetchRequest req;
  bool found = false;
  {
    std::lock_guard<std::mutex> qlock(queue_mu_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->file == file && it->first <= page &&
          page < it->first + it->count) {
        req = *it;
        queue_.erase(it);
        queue_depth_.store(static_cast<int64_t>(queue_.size()),
                           std::memory_order_relaxed);
        found = true;
        break;
      }
    }
  }
  if (!found) return false;
  // Only the not-yet-demanded tail of the hint is still interesting.
  req.count = req.first + req.count - page;
  req.first = page;
  std::vector<std::byte> staging;
  ServicePrefetchLocked(req, &staging);
  return true;
}

void BufferPool::ServicePrefetchLocked(const PrefetchRequest& req,
                                       std::vector<std::byte>* staging) {
  if (FileEpoch(req.file) != req.epoch) return;  // file was evicted since
  auto size_or = disk_->SizeInPages(req.file);
  if (!size_or.ok()) return;
  PageId end = std::min<PageId>(req.first + req.count, size_or.value());
  PageId p = std::max<PageId>(req.first, 0);
  while (p < end) {
    if (page_table_.count(Key{req.file, p}) != 0) {
      ++p;
      continue;
    }
    PageId run_end = p + 1;
    while (run_end < end && page_table_.count(Key{req.file, run_end}) == 0) {
      ++run_end;
    }
    std::vector<int32_t> victims;
    while (static_cast<PageId>(victims.size()) < run_end - p) {
      int32_t v = FindPrefetchVictim();
      if (v < 0) break;
      victims.push_back(v);
    }
    if (victims.empty()) return;  // no room without displacing demand pages
    int64_t n = static_cast<int64_t>(victims.size());
    staging->resize(static_cast<size_t>(n) * kPageSize);
    if (!disk_->ReadPages(req.file, p, n, staging->data(), /*prefetch=*/true)
             .ok()) {
      // Fire-and-forget: drop the hint; a real fault resurfaces on demand.
      for (int32_t v : victims) free_frames_.push_back(v);
      return;
    }
    for (int64_t i = 0; i < n; ++i) {
      Frame& frame = frames_[victims[i]];
      std::memcpy(frame.data.get(), staging->data() + i * kPageSize,
                  kPageSize);
      frame.file = req.file;
      frame.page = p + i;
      frame.pin_count = 0;
      frame.dirty = false;
      frame.prefetched = true;
      ++prefetched_unconsumed_;
      lru_.push_back(victims[i]);
      frame.lru_pos = std::prev(lru_.end());
      frame.in_lru = true;
      page_table_[Key{req.file, frame.page}] = victims[i];
    }
    p += n;
  }
  TouchOccupancyGauge();
}

void BufferPool::SetPrefetcherPausedForTest(bool paused) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    paused_ = paused;
  }
  queue_cv_.notify_all();
}

void BufferPool::DrainPrefetches() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  drain_cv_.wait(lock, [&] {
    return stop_ || (queue_.empty() && in_service_ == 0);
  });
}

Status BufferPool::FlushFile(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  if (batched_writeback()) {
    std::vector<int32_t> dirty;
    for (size_t i = 0; i < frames_.size(); ++i) {
      if (frames_[i].file == file && frames_[i].dirty) {
        dirty.push_back(static_cast<int32_t>(i));
      }
    }
    return FlushFramesBatched(dirty);
  }
  for (Frame& frame : frames_) {
    if (frame.file == file) IOLAP_RETURN_IF_ERROR(FlushFrame(frame));
  }
  return Status::Ok();
}

Status BufferPool::EvictFile(FileId file) {
  {
    // Cancel queued prefetches first (without mu_; see lock ordering note),
    // then bump the epoch so any request already popped by the worker is
    // dropped at its epoch check.
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [file](const PrefetchRequest& r) {
                                  return r.file == file;
                                }),
                 queue_.end());
    queue_depth_.store(static_cast<int64_t>(queue_.size()),
                       std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++file_epochs_[file];
  DropPlanStateForFileLocked(file);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.file != file) continue;
    if (frame.pin_count > 0) {
      return Status::FailedPrecondition(
          "EvictFile: page " + std::to_string(frame.page) + " of file " +
          std::to_string(file) + " is pinned");
    }
    IOLAP_RETURN_IF_ERROR(FlushFrame(frame));
    ReleaseFrame(i);
  }
  TouchOccupancyGauge();
  return Status::Ok();
}

void BufferPool::ReleaseFrame(size_t frame_index) {
  Frame& frame = frames_[frame_index];
  page_table_.erase(Key{frame.file, frame.page});
  if (frame.in_lru) {
    lru_.erase(frame.lru_pos);
    frame.in_lru = false;
  }
  if (frame.planned) {
    plan_annex_.erase(frame.lru_pos);
    frame.planned = false;
  }
  if (frame.prefetched) {
    ++stats_.prefetch_wasted;
    ++window_prefetch_wasted_;
    --prefetched_unconsumed_;
    frame.prefetched = false;
  }
  frame.file = kInvalidFileId;
  frame.page = -1;
  free_frames_.push_back(static_cast<int32_t>(frame_index));
}

BufferPool::PlannedAccess::~PlannedAccess() {
  if (pool_ != nullptr) pool_->EndPlannedAccess();
}

BufferPool::PlannedAccess& BufferPool::PlannedAccess::operator=(
    PlannedAccess&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->EndPlannedAccess();
    pool_ = other.pool_;
    other.pool_ = nullptr;
  }
  return *this;
}

void BufferPool::ConfigurePlanReadAhead(AsyncBackendKind backend,
                                        int in_flight_chunks) {
  std::unique_ptr<AsyncReader> retired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const AsyncBackendKind resolved = ResolveAsyncBackend(backend);
    if (resolved != plan_backend_) retired = std::move(async_reader_);
    plan_backend_ = resolved;
    plan_in_flight_ = std::max(1, in_flight_chunks);
    // kAuto on a single-hardware-thread host: drive plans synchronously
    // from the pin path (see plan_sync_ in the header). An explicit
    // backend request or env override keeps the async machinery so tests
    // and CI can force it anywhere.
    plan_sync_ = backend == AsyncBackendKind::kAuto &&
                 resolved != AsyncBackendKind::kOff &&
                 std::getenv("IOLAP_IO_BACKEND") == nullptr &&
                 std::thread::hardware_concurrency() <= 1;
    if (plan_sync_ && async_reader_ != nullptr) {
      retired = std::move(async_reader_);
    }
  }
  // `retired` is destroyed here, without mu_ held: backend teardown can
  // deliver completions, which re-acquire mu_ (see lock-ordering note in
  // the header).
}

BufferPool::PlannedAccess BufferPool::BeginPlannedAccess(
    const AccessPlan& plan) {
  if (plan.empty()) return PlannedAccess();
  std::lock_guard<std::mutex> lock(mu_);
  if (plan_backend_ == AsyncBackendKind::kOff || plan_active_) {
    return PlannedAccess();
  }
  if (async_reader_ == nullptr && !plan_sync_) {
    auto completion = [this](uint64_t tag, bool ok) {
      PlanReadComplete(tag, ok);
    };
    async_reader_ = CreateAsyncReader(plan_backend_, disk_, completion);
    if (async_reader_ == nullptr &&
        plan_backend_ == AsyncBackendKind::kUring) {
      // Ring setup failed despite a positive probe; fall back quietly.
      plan_backend_ = AsyncBackendKind::kPread;
      async_reader_ = CreateAsyncReader(plan_backend_, disk_, completion);
    }
    if (async_reader_ == nullptr) {
      plan_backend_ = AsyncBackendKind::kOff;
      return PlannedAccess();
    }
  }
  plan_streams_.clear();
  plan_files_.clear();
  for (const PlanStream& s : plan.streams) {
    auto size_or = disk_->SizeInPages(s.file);
    if (!size_or.ok()) continue;
    const PageId first = std::max<PageId>(s.first, 0);
    const PageId end = std::min<PageId>(s.end, size_or.value());
    if (end <= first) continue;
    plan_streams_.push_back(PlanStreamState{s.file, first, first, end, first});
    plan_files_.insert(s.file);
  }
  if (plan_streams_.empty()) return PlannedAccess();
  plan_next_stream_ = 0;
  plan_active_ = true;
  PumpPlanLocked();
  return PlannedAccess(this);
}

void BufferPool::EndPlannedAccess() {
  std::unique_lock<std::mutex> lock(mu_);
  plan_active_ = false;  // stops further pumps; completions still resolve
  while (plan_outstanding_ > 0) plan_cv_.wait(lock);
  // Pages still parked in chunk buffers were physically read but never
  // demanded: wasted read-ahead.
  stats_.prefetch_wasted += static_cast<int64_t>(plan_pending_.size());
  plan_pending_.clear();
  plan_chunks_.clear();
  plan_inflight_pages_.clear();
  plan_streams_.clear();
  plan_files_.clear();
  // Annex frames stay installed: still-valid cache, reclaimed by demand
  // eviction before any LRU frame (see FindVictim).
}

void BufferPool::PumpPlanLocked() {
  if (!plan_active_ || async_reader_ == nullptr) return;
  const int64_t chunk_pages = std::max(read_ahead_pages(), 1);
  // Every stream must be able to keep at least one chunk in flight: a
  // pass drives one cell stream plus one stream per open segment, all
  // advancing together, and a global cap smaller than the stream count
  // starves each stream in turn — the scan then catches the read
  // frontier and blocks on every chunk.
  const int64_t in_flight_cap = std::max<int64_t>(
      plan_in_flight_, static_cast<int64_t>(plan_streams_.size()));
  size_t exhausted = 0;
  while (plan_outstanding_ < in_flight_cap &&
         exhausted < plan_streams_.size()) {
    PlanStreamState& s =
        plan_streams_[plan_next_stream_ % plan_streams_.size()];
    ++plan_next_stream_;
    // Submit at most `plan_in_flight_` chunks past the consumer: enough
    // depth that steady-state consumption never drains the frontier,
    // while bounding staged-but-unconsumed chunk memory per stream.
    const PageId limit = std::min<PageId>(
        s.end,
        s.consume_pos + static_cast<PageId>(std::max(plan_in_flight_, 2)) *
                            chunk_pages);
    PageId p = s.next_submit;
    while (p < limit) {
      const Key k{s.file, p};
      if (page_table_.count(k) == 0 && plan_inflight_pages_.count(k) == 0 &&
          plan_pending_.count(k) == 0) {
        break;
      }
      ++p;
    }
    s.next_submit = p;
    if (p >= limit) {
      ++exhausted;
      continue;
    }
    exhausted = 0;
    PageId run_end = p + 1;
    while (run_end < limit && run_end - p < chunk_pages) {
      const Key k{s.file, run_end};
      if (page_table_.count(k) != 0 || plan_inflight_pages_.count(k) != 0 ||
          plan_pending_.count(k) != 0) {
        break;
      }
      ++run_end;
    }
    const int64_t n = run_end - p;
    auto chunk = std::make_unique<PlanChunk>();
    chunk->file = s.file;
    chunk->first = p;
    chunk->count = n;
    chunk->epoch = FileEpoch(s.file);
    // Default-initialized (make_unique would memset a buffer the read is
    // about to overwrite — a full extra pass over every planned byte).
    chunk->data = std::unique_ptr<std::byte[]>(
        new std::byte[static_cast<size_t>(n) * kPageSize]);
    const uint64_t tag = plan_next_tag_++;
    AsyncReadRequest req{s.file, p, n, chunk->data.get(), tag};
    for (PageId q = p; q < run_end; ++q) {
      plan_inflight_pages_.insert(Key{s.file, q});
    }
    plan_chunks_[tag] = std::move(chunk);
    ++plan_outstanding_;
    s.next_submit = run_end;
    Status submitted = async_reader_->Submit(req);
    if (!submitted.ok()) {
      // Not accepted — no completion will fire. Roll back and stop
      // planning this stream; its pages fall back to demand reads.
      for (PageId q = p; q < run_end; ++q) {
        plan_inflight_pages_.erase(Key{s.file, q});
      }
      plan_chunks_.erase(tag);
      --plan_outstanding_;
      s.next_submit = s.end;
      s.consume_pos = s.end;
      plan_cv_.notify_all();
    }
  }
}

int32_t BufferPool::TryServePlannedChunkLocked(FileId file, PageId page) {
  if (plan_files_.count(file) == 0) return -1;
  // Synchronous mode owns the whole staging budget the async path would
  // have spread over plan_in_flight_ chunks, so it reads that span in one
  // transfer; the async rescue path keeps single chunks to avoid racing
  // the in-flight frontier.
  const int64_t chunk_pages =
      std::max<int64_t>(read_ahead_pages(), 1) *
      (plan_sync_ ? std::max(plan_in_flight_, 1) : 1);
  for (PlanStreamState& s : plan_streams_) {
    if (s.file != file || page < s.begin || page >= s.end) continue;
    // Extend the chunk forward until it would overlap a page the pool
    // already tracks (cached, in flight, or parked) — those must not be
    // read twice.
    const PageId limit = std::min<PageId>(s.end, page + chunk_pages);
    PageId run_end = page + 1;
    while (run_end < limit) {
      const Key k{file, run_end};
      if (page_table_.count(k) != 0 || plan_inflight_pages_.count(k) != 0 ||
          plan_pending_.count(k) != 0) {
        break;
      }
      ++run_end;
    }
    const int64_t n = run_end - page;
    // Claim the victim frame before touching disk so a full-of-pins pool
    // fails over to the demand path without having moved any bytes.
    auto victim = FindVictim();
    if (!victim.ok()) return -1;
    const int32_t idx = victim.value();
    auto chunk = std::make_unique<PlanChunk>();
    chunk->file = file;
    chunk->first = page;
    chunk->count = n;
    chunk->epoch = FileEpoch(file);
    chunk->resolved = true;
    // Scatter-read into per-page buffers: the demanded page lands in the
    // victim frame directly, parked pages are later served by swapping
    // their buffer into a frame — one copy per page end to end, same as a
    // serial demand read, but one syscall per chunk instead of per page.
    Frame& frame = frames_[idx];
    chunk->page_bufs.reserve(static_cast<size_t>(n));
    std::vector<std::byte*> iov(static_cast<size_t>(n));
    iov[0] = frame.data.get();
    chunk->page_bufs.push_back(nullptr);  // slot 0: read into the frame
    for (int64_t i = 1; i < n; ++i) {
      // Default-initialized (make_unique would memset buffers the read is
      // about to overwrite — a full extra pass over every planned byte).
      chunk->page_bufs.emplace_back(new std::byte[kPageSize]);
      iov[static_cast<size_t>(i)] = chunk->page_bufs.back().get();
    }
    Status read = disk_->ReadPagesScatter(file, page, iov.data(), n,
                                          /*prefetch=*/true);
    if (!read.ok()) {
      // Dropped like a failed prefetch; a real fault resurfaces on the
      // demand read the caller falls back to.
      free_frames_.push_back(idx);
      TouchOccupancyGauge();
      return -1;
    }
    if (n > 1) {
      const uint64_t tag = plan_next_tag_++;
      chunk->pending = n - 1;
      for (int64_t i = 1; i < n; ++i) {
        plan_pending_[Key{file, page + i}] = PendingPage{tag, i};
      }
      plan_chunks_[tag] = std::move(chunk);
    }
    if (run_end > s.next_submit) s.next_submit = run_end;
    // The physical read was prefetch-class; consuming the demanded page
    // charges the demand read the serial pipeline would have issued here.
    ++stats_.prefetch_hits;
    disk_->ChargeDemandRead();
    frame.file = file;
    frame.page = page;
    frame.pin_count = 1;
    frame.dirty = false;
    frame.prefetched = false;
    page_table_[Key{file, page}] = idx;
    TouchOccupancyGauge();
    return idx;
  }
  return -1;
}

void BufferPool::PlanNotifyPinLocked(FileId file, PageId page) {
  if (!plan_active_ || plan_files_.count(file) == 0) return;
  bool advanced = false;
  for (PlanStreamState& s : plan_streams_) {
    if (s.file != file || page < s.begin || page >= s.end) continue;
    if (page + 1 > s.consume_pos) {
      s.consume_pos = page + 1;
      advanced = true;
    }
  }
  if (advanced) PumpPlanLocked();
}

void BufferPool::PlanReadComplete(uint64_t tag, bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  auto cit = plan_chunks_.find(tag);
  if (cit == plan_chunks_.end()) return;
  PlanChunk& chunk = *cit->second;
  --plan_outstanding_;
  chunk.resolved = true;
  for (PageId q = chunk.first; q < chunk.first + chunk.count; ++q) {
    plan_inflight_pages_.erase(Key{chunk.file, q});
  }
  const bool stale = FileEpoch(chunk.file) != chunk.epoch;
  if (!ok || stale) {
    // A failed read moved no bytes (dropped silently, like a failed
    // heuristic prefetch); a stale one did read — count it wasted.
    if (ok) stats_.prefetch_wasted += chunk.count;
    plan_chunks_.erase(cit);
    plan_cv_.notify_all();
    PumpPlanLocked();
    return;
  }
  for (int64_t i = 0; i < chunk.count; ++i) {
    const Key key{chunk.file, chunk.first + i};
    if (page_table_.count(key) != 0) {
      // A demand read got here first; this planned page is wasted.
      ++stats_.prefetch_wasted;
      continue;
    }
    if (!free_frames_.empty()) {
      // Install into a genuinely free frame, outside the LRU ("annex").
      const int32_t idx = free_frames_.back();
      free_frames_.pop_back();
      Frame& frame = frames_[idx];
      std::memcpy(frame.data.get(), chunk.data.get() + i * kPageSize,
                  kPageSize);
      frame.file = chunk.file;
      frame.page = chunk.first + i;
      frame.pin_count = 0;
      frame.dirty = false;
      frame.prefetched = true;
      frame.planned = true;
      ++prefetched_unconsumed_;
      plan_annex_.push_back(idx);
      frame.lru_pos = std::prev(plan_annex_.end());
      frame.in_lru = false;
      page_table_[key] = idx;
    } else {
      // Pool full: park the page in the chunk buffer until demanded.
      plan_pending_[key] = PendingPage{tag, i};
      ++chunk.pending;
    }
  }
  MaybeFreeChunkLocked(tag);
  TouchOccupancyGauge();
  plan_cv_.notify_all();
  PumpPlanLocked();
}

void BufferPool::DropPlanStateForFileLocked(FileId file) {
  if (plan_files_.count(file) == 0) return;
  for (PlanStreamState& s : plan_streams_) {
    if (s.file == file) {
      s.next_submit = s.end;
      s.consume_pos = s.end;
    }
  }
  for (auto it = plan_pending_.begin(); it != plan_pending_.end();) {
    if (it->first.file != file) {
      ++it;
      continue;
    }
    auto cit = plan_chunks_.find(it->second.chunk_tag);
    if (cit != plan_chunks_.end()) --cit->second->pending;
    ++stats_.prefetch_wasted;
    it = plan_pending_.erase(it);
  }
  for (auto it = plan_chunks_.begin(); it != plan_chunks_.end();) {
    if (it->second->resolved && it->second->pending == 0) {
      it = plan_chunks_.erase(it);
    } else {
      ++it;
    }
  }
  // In-flight chunks of the file die at their epoch check on completion.
}

void BufferPool::MaybeFreeChunkLocked(uint64_t tag) {
  auto it = plan_chunks_.find(tag);
  if (it != plan_chunks_.end() && it->second->resolved &&
      it->second->pending == 0) {
    plan_chunks_.erase(it);
  }
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (batched_writeback()) {
    std::vector<int32_t> dirty;
    for (size_t i = 0; i < frames_.size(); ++i) {
      if (frames_[i].file != kInvalidFileId && frames_[i].dirty) {
        dirty.push_back(static_cast<int32_t>(i));
      }
    }
    return FlushFramesBatched(dirty);
  }
  for (Frame& frame : frames_) {
    if (frame.file != kInvalidFileId) IOLAP_RETURN_IF_ERROR(FlushFrame(frame));
  }
  return Status::Ok();
}

}  // namespace iolap
