#include "storage/async_io.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <condition_variable>

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define IOLAP_HAVE_URING_HEADERS 1
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

// ThreadSanitizer cannot observe the kernel's stores into the shared
// submission/completion rings and flags them as races; force the pread
// fallback under TSan builds.
#if defined(__SANITIZE_THREAD__)
#define IOLAP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IOLAP_TSAN 1
#endif
#endif

namespace iolap {

namespace {

/// Pread fallback: a small pool of workers draining a request queue with
/// positional block reads through DiskManager (which charges the reads to
/// the prefetch class and bypasses the fault injector). Two workers are
/// enough to keep one read in flight while another completes — the buffer
/// pool bounds in-flight depth anyway.
class PreadPoolReader : public AsyncReader {
 public:
  PreadPoolReader(DiskManager* disk, Completion done, int threads)
      : disk_(disk), done_(std::move(done)) {
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back(&PreadPoolReader::WorkerLoop, this);
    }
  }

  ~PreadPoolReader() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    // Workers drain the whole queue before exiting, so every submitted
    // request has had its completion by the time join returns.
    for (std::thread& t : workers_) t.join();
  }

  Status Submit(const AsyncReadRequest& req) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(req);
    }
    cv_.notify_one();
    return Status::Ok();
  }

  const char* name() const override { return "pread"; }

 private:
  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stop_ set and nothing left to drain
      AsyncReadRequest req = queue_.front();
      queue_.pop_front();
      lock.unlock();
      Status read = disk_->ReadPages(req.file, req.first, req.count,
                                     req.buffer, /*prefetch=*/true);
      done_(req.tag, read.ok());
      lock.lock();
    }
  }

  DiskManager* disk_;
  Completion done_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<AsyncReadRequest> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

#if defined(IOLAP_HAVE_URING_HEADERS) && !defined(IOLAP_TSAN)

int SysIoUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(
      syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags,
              nullptr, 0));
}

/// Raw-syscall io_uring backend (the container has kernel headers but no
/// liburing). One submission mutex serializes SQE writes; one reaper
/// thread blocks in io_uring_enter(GETEVENTS) and fires completions.
/// Shutdown: after all reads have completed, a NOP with a sentinel tag
/// wakes the reaper out of its blocking wait.
class IoUringReader : public AsyncReader {
 public:
  static constexpr unsigned kEntries = 64;  // >= any bounded in-flight depth
  static constexpr uint64_t kStopTag = ~uint64_t{0};

  static std::unique_ptr<IoUringReader> Create(DiskManager* disk,
                                               Completion done) {
    auto reader =
        std::unique_ptr<IoUringReader>(new IoUringReader(disk, std::move(done)));
    if (!reader->Init()) return nullptr;
    return reader;
  }

  ~IoUringReader() override {
    if (ring_fd_ >= 0) {
      // Wait for in-flight reads first: the NOP could otherwise complete
      // (and stop the reaper) ahead of them, leaving their completions
      // unreaped and the kernel writing into freed buffers.
      {
        std::unique_lock<std::mutex> lock(state_mu_);
        drained_cv_.wait(lock, [&] { return pending_.empty(); });
      }
      SubmitSqe(/*opcode=*/IORING_OP_NOP, /*fd=*/-1, /*off=*/0,
                /*addr=*/nullptr, /*len=*/0, kStopTag);
      if (reaper_.joinable()) reaper_.join();
    }
    if (sq_ptr_ != nullptr) munmap(sq_ptr_, sq_map_len_);
    if (cq_ptr_ != nullptr && cq_ptr_ != sq_ptr_) munmap(cq_ptr_, cq_map_len_);
    if (sqes_ != nullptr) munmap(sqes_, sqes_map_len_);
    if (ring_fd_ >= 0) close(ring_fd_);
  }

  Status Submit(const AsyncReadRequest& req) override {
    IOLAP_ASSIGN_OR_RETURN(int fd, disk_->RawFd(req.file));
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      pending_[req.tag] = req.count;
    }
    Status queued =
        SubmitSqe(IORING_OP_READ, fd,
                  static_cast<uint64_t>(req.first) * kPageSize, req.buffer,
                  static_cast<unsigned>(req.count * kPageSize), req.tag);
    if (!queued.ok()) {
      std::lock_guard<std::mutex> lock(state_mu_);
      pending_.erase(req.tag);
    }
    return queued;
  }

  const char* name() const override { return "uring"; }

 private:
  IoUringReader(DiskManager* disk, Completion done)
      : disk_(disk), done_(std::move(done)) {}

  bool Init() {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    ring_fd_ = SysIoUringSetup(kEntries, &params);
    if (ring_fd_ < 0) return false;
    sq_map_len_ = params.sq_off.array + params.sq_entries * sizeof(uint32_t);
    cq_map_len_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap && cq_map_len_ > sq_map_len_) sq_map_len_ = cq_map_len_;
    sq_ptr_ = mmap(nullptr, sq_map_len_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ptr_ == MAP_FAILED) {
      sq_ptr_ = nullptr;
      return false;
    }
    if (single_mmap) {
      cq_ptr_ = sq_ptr_;
    } else {
      cq_ptr_ = mmap(nullptr, cq_map_len_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ptr_ == MAP_FAILED) {
        cq_ptr_ = nullptr;
        return false;
      }
    }
    sqes_map_len_ = params.sq_entries * sizeof(io_uring_sqe);
    void* sqes = mmap(nullptr, sqes_map_len_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqes == MAP_FAILED) return false;
    sqes_ = static_cast<io_uring_sqe*>(sqes);

    auto at = [](void* base, uint32_t off) {
      return static_cast<char*>(base) + off;
    };
    sq_head_ = reinterpret_cast<std::atomic<uint32_t>*>(
        at(sq_ptr_, params.sq_off.head));
    sq_tail_ = reinterpret_cast<std::atomic<uint32_t>*>(
        at(sq_ptr_, params.sq_off.tail));
    sq_mask_ = *reinterpret_cast<uint32_t*>(at(sq_ptr_, params.sq_off.ring_mask));
    sq_array_ = reinterpret_cast<uint32_t*>(at(sq_ptr_, params.sq_off.array));
    cq_head_ = reinterpret_cast<std::atomic<uint32_t>*>(
        at(cq_ptr_, params.cq_off.head));
    cq_tail_ = reinterpret_cast<std::atomic<uint32_t>*>(
        at(cq_ptr_, params.cq_off.tail));
    cq_mask_ = *reinterpret_cast<uint32_t*>(at(cq_ptr_, params.cq_off.ring_mask));
    cqes_ = reinterpret_cast<io_uring_cqe*>(at(cq_ptr_, params.cq_off.cqes));

    reaper_ = std::thread(&IoUringReader::ReaperLoop, this);
    return true;
  }

  Status SubmitSqe(uint8_t opcode, int fd, uint64_t off, void* addr,
                   unsigned len, uint64_t tag) {
    std::lock_guard<std::mutex> lock(submit_mu_);
    const uint32_t tail = sq_tail_->load(std::memory_order_relaxed);
    if (tail - sq_head_->load(std::memory_order_acquire) >= kEntries) {
      return Status::ResourceExhausted("io_uring submission queue full");
    }
    const uint32_t idx = tail & sq_mask_;
    io_uring_sqe* sqe = &sqes_[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = opcode;
    sqe->fd = fd;
    sqe->off = off;
    sqe->addr = reinterpret_cast<uint64_t>(addr);
    sqe->len = len;
    sqe->user_data = tag;
    sq_array_[idx] = idx;
    sq_tail_->store(tail + 1, std::memory_order_release);
    for (;;) {
      const int ret = SysIoUringEnter(ring_fd_, 1, 0, 0);
      if (ret >= 0) return Status::Ok();
      if (errno == EINTR || errno == EAGAIN) continue;
      // The kernel consumed nothing; take the SQE back before reporting.
      sq_tail_->store(tail, std::memory_order_release);
      return Status::Internal(std::string("io_uring_enter: ") +
                              std::strerror(errno));
    }
  }

  void ReaperLoop() {
    bool stop = false;
    while (!stop) {
      const int ret = SysIoUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
      if (ret < 0 && errno != EINTR) break;  // ring torn down underneath
      uint32_t head = cq_head_->load(std::memory_order_relaxed);
      const uint32_t tail = cq_tail_->load(std::memory_order_acquire);
      while (head != tail) {
        const io_uring_cqe& cqe = cqes_[head & cq_mask_];
        const uint64_t tag = cqe.user_data;
        const int32_t res = cqe.res;
        ++head;
        cq_head_->store(head, std::memory_order_release);
        if (tag == kStopTag) {
          stop = true;
          continue;
        }
        int64_t count = 0;
        bool known = false;
        {
          std::lock_guard<std::mutex> lock(state_mu_);
          auto it = pending_.find(tag);
          if (it != pending_.end()) {
            count = it->second;
            known = true;
            pending_.erase(it);
          }
          if (pending_.empty()) drained_cv_.notify_all();
        }
        if (!known) continue;  // submission already reported as failed
        const bool ok =
            res == static_cast<int64_t>(count) * static_cast<int64_t>(kPageSize);
        if (ok) disk_->ChargePrefetchReads(count);
        done_(tag, ok);
      }
    }
  }

  DiskManager* disk_;
  Completion done_;

  int ring_fd_ = -1;
  void* sq_ptr_ = nullptr;
  void* cq_ptr_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  size_t sq_map_len_ = 0;
  size_t cq_map_len_ = 0;
  size_t sqes_map_len_ = 0;
  std::atomic<uint32_t>* sq_head_ = nullptr;
  std::atomic<uint32_t>* sq_tail_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t* sq_array_ = nullptr;
  std::atomic<uint32_t>* cq_head_ = nullptr;
  std::atomic<uint32_t>* cq_tail_ = nullptr;
  uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  std::mutex submit_mu_;  // serializes SQE writes + tail publication
  std::mutex state_mu_;   // guards pending_
  std::condition_variable drained_cv_;
  std::unordered_map<uint64_t, int64_t> pending_;  // tag -> page count
  std::thread reaper_;
};

#endif  // IOLAP_HAVE_URING_HEADERS && !IOLAP_TSAN

}  // namespace

bool IoUringSupported() {
#if defined(IOLAP_HAVE_URING_HEADERS) && !defined(IOLAP_TSAN)
  static const bool supported = [] {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int fd = SysIoUringSetup(4, &params);
    if (fd < 0) return false;
    close(fd);
    return true;
  }();
  return supported;
#else
  return false;
#endif
}

bool ParseAsyncBackend(const std::string& text, AsyncBackendKind* out) {
  if (text == "off") {
    *out = AsyncBackendKind::kOff;
  } else if (text == "auto") {
    *out = AsyncBackendKind::kAuto;
  } else if (text == "uring") {
    *out = AsyncBackendKind::kUring;
  } else if (text == "pread") {
    *out = AsyncBackendKind::kPread;
  } else {
    return false;
  }
  return true;
}

const char* AsyncBackendName(AsyncBackendKind kind) {
  switch (kind) {
    case AsyncBackendKind::kOff:
      return "off";
    case AsyncBackendKind::kAuto:
      return "auto";
    case AsyncBackendKind::kUring:
      return "uring";
    case AsyncBackendKind::kPread:
      return "pread";
  }
  return "off";
}

AsyncBackendKind ResolveAsyncBackend(AsyncBackendKind requested) {
  // An explicit kOff is a kill switch the env never overrides: the
  // Serial() pipeline must stay serial even under a fleet-wide
  // IOLAP_IO_BACKEND force, or every serial baseline (and the
  // equivalence tests' reference runs) would silently go async.
  if (requested == AsyncBackendKind::kOff) return AsyncBackendKind::kOff;
  const char* env = std::getenv("IOLAP_IO_BACKEND");
  if (env != nullptr && *env != '\0') {
    AsyncBackendKind forced;
    if (ParseAsyncBackend(env, &forced)) requested = forced;
  }
  if (requested == AsyncBackendKind::kOff) return AsyncBackendKind::kOff;
  if (requested == AsyncBackendKind::kPread) return AsyncBackendKind::kPread;
  return IoUringSupported() ? AsyncBackendKind::kUring
                            : AsyncBackendKind::kPread;
}

std::unique_ptr<AsyncReader> CreateAsyncReader(AsyncBackendKind kind,
                                               DiskManager* disk,
                                               AsyncReader::Completion done) {
#if defined(IOLAP_HAVE_URING_HEADERS) && !defined(IOLAP_TSAN)
  if (kind == AsyncBackendKind::kUring) {
    return IoUringReader::Create(disk, std::move(done));
  }
#endif
  if (kind == AsyncBackendKind::kUring || kind == AsyncBackendKind::kPread) {
    return std::make_unique<PreadPoolReader>(disk, std::move(done),
                                             /*threads=*/2);
  }
  return nullptr;
}

}  // namespace iolap
