#ifndef IOLAP_STORAGE_ACCESS_PLAN_H_
#define IOLAP_STORAGE_ACCESS_PLAN_H_

#include <vector>

#include "storage/disk_manager.h"

namespace iolap {

/// One ordered, contiguous page range of an access plan. Streams are
/// consumed front to back: the planner submits read-ahead a bounded
/// distance past the consumer's position (see BufferPool::BeginPlannedAccess).
struct PlanStream {
  FileId file = kInvalidFileId;
  PageId first = 0;  // first page of the stream
  PageId end = 0;    // one past the last page
};

/// An explicit declaration of the page ranges an iteration will read, in
/// order. Emitted by readers whose schedule is exact — the window engine's
/// cell scan is strictly sequential and its window loads are key-driven off
/// known segment boundaries — and driven by the buffer pool's async
/// read-ahead backend. Multiple streams may cover the same file (e.g. one
/// per table segment); streams sharing a boundary page are fine — the
/// submitter skips pages that are already cached or in flight.
struct AccessPlan {
  std::vector<PlanStream> streams;

  /// Appends the page range [first, end) of `file`; empty ranges are
  /// dropped so callers can pass raw begin/end arithmetic.
  void AddRange(FileId file, PageId first, PageId end) {
    if (file == kInvalidFileId || end <= first) return;
    streams.push_back(PlanStream{file, first, end});
  }

  bool empty() const { return streams.empty(); }
};

}  // namespace iolap

#endif  // IOLAP_STORAGE_ACCESS_PLAN_H_
