#ifndef IOLAP_STORAGE_EXTERNAL_SORT_H_
#define IOLAP_STORAGE_EXTERNAL_SORT_H_

#include <algorithm>
#include <concepts>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/io_pipeline.h"
#include "storage/paged_file.h"

namespace iolap {

/// Normalized-key protocol (optional): a comparator may expose
/// `uint64_t KeyPrefix(const T&)` returning a prefix of its sort key packed
/// so that unsigned comparison of prefixes refines the full order —
/// `KeyPrefix(a) < KeyPrefix(b)` must imply `less(a, b)`, and equal
/// prefixes defer to the full comparator. The sorter then sorts compact
/// (prefix, index) pairs during run generation and resolves most merge
/// matches with one integer compare, falling back to `less` only on prefix
/// ties. Comparators without the member are sorted exactly as before.
template <typename Less, typename T>
concept SorterKeyPrefix = requires(const Less& less, const T& value) {
  { less.KeyPrefix(value) } -> std::convertible_to<uint64_t>;
};

/// Classic external merge sort over a TypedFile, restricted to
/// `budget_pages` pages of private working memory per worker: run
/// generation sorts budget-sized chunks, then (budget-1)-way merge passes
/// combine them. For the data-to-memory ratios in the paper's experiments
/// this is the standard two-pass sort its cost model assumes (read+write
/// every page twice).
///
/// The sorter bypasses the buffer pool (its memory *is* the budget); the
/// caller's pool pages for the file are flushed and evicted first so both
/// channels stay coherent. All traffic is counted by the DiskManager.
///
/// I/O pipeline: `IoPipelineOptions` controls how many workers generate
/// runs concurrently and how many pages move per transfer in run
/// generation, the merge, and the in-memory fast path. Chunk boundaries are
/// fixed by input offset and every run's scratch position is preallocated,
/// so the sorted output — and the page I/O *count* — is identical for
/// every setting; only wall-clock and syscall counts change. The merge is
/// a loser tree with a deterministic lower-run-index tie-break, so equal
/// keys land in the same order under every configuration.
template <typename T>
class ExternalSorter {
 public:
  ExternalSorter(DiskManager* disk, BufferPool* pool, int64_t budget_pages,
                 IoPipelineOptions io = IoPipelineOptions())
      : disk_(disk),
        pool_(pool),
        budget_pages_(std::max<int64_t>(budget_pages, 3)),
        io_(io) {}

  template <typename Less>
  Status Sort(TypedFile<T>* file, Less less) {
    return SortRange(file, 0, file->size(), less);
  }

  /// Sorts records [begin, end) of `file` in place. `begin` must be
  /// page-aligned (summary-table segments are laid out page-aligned by the
  /// preprocessor for exactly this reason).
  template <typename Less>
  Status SortRange(TypedFile<T>* file, int64_t begin, int64_t end,
                   Less less) {
    const int64_t count = end - begin;
    if (begin % kRpp != 0) {
      return Status::InvalidArgument("sort range start not page-aligned");
    }
    if (begin < 0 || end > file->size()) {
      return Status::OutOfRange("sort range outside file");
    }
    IOLAP_RETURN_IF_ERROR(pool_->EvictFile(file->file_id()));
    if (count <= 1) return Status::Ok();

    const int64_t budget_records = budget_pages_ * kRpp;

    // Fast path: the whole range fits in the sort budget.
    if (count <= budget_records) {
      TraceSpan span("sort.in_memory");
      span.AddArg("records", count);
      return SortInMemory(file->file_id(), begin, count, less);
    }

    // Pass 0: run generation. Every run's chunk of input and scratch
    // position is a pure function of its index, so workers can sort runs
    // in any order (or in parallel) and produce identical scratch bytes.
    struct Run {
      int64_t start_page;  // within the scratch file
      int64_t records;
    };
    IOLAP_ASSIGN_OR_RETURN(FileId scratch_a, disk_->CreateFile("sort_a"));
    IOLAP_ASSIGN_OR_RETURN(FileId scratch_b, disk_->CreateFile("sort_b"));
    std::vector<Run> runs;
    {
      TraceSpan run_gen_span("sort.run_gen");
      run_gen_span.AddArg("records", count);
      int64_t next_page = 0;
      for (int64_t offset = 0; offset < count; offset += budget_records) {
        int64_t n = std::min(budget_records, count - offset);
        runs.push_back(Run{next_page, n});
        next_page += (n + kRpp - 1) / kRpp;
      }
      // Reserve the whole scratch extent up front so concurrent workers can
      // write disjoint page ranges without the dense-growth append rule
      // serializing them (Preallocate is not counted as page I/O).
      IOLAP_RETURN_IF_ERROR(disk_->Preallocate(scratch_a, next_page));

      int threads = io_.EffectiveSortThreads();
      threads = static_cast<int>(
          std::min<int64_t>(threads, static_cast<int64_t>(runs.size())));
      if (threads <= 1) {
        for (size_t i = 0; i < runs.size(); ++i) {
          IOLAP_RETURN_IF_ERROR(GenerateRun(
              file->file_id(), begin + static_cast<int64_t>(i) * budget_records,
              scratch_a, runs[i].start_page, runs[i].records, less));
        }
      } else {
        ThreadPool tp(threads);
        std::vector<TaskFuture> futures;
        futures.reserve(runs.size());
        for (size_t i = 0; i < runs.size(); ++i) {
          const int64_t in_begin =
              begin + static_cast<int64_t>(i) * budget_records;
          const Run run = runs[i];
          FileId in = file->file_id();
          futures.push_back(tp.Submit([this, in, in_begin, scratch_a, run,
                                       less]() {
            return GenerateRun(in, in_begin, scratch_a, run.start_page,
                               run.records, less);
          }));
        }
        Status first = Status::Ok();
        for (TaskFuture& f : futures) {
          Status s = f.Wait();
          if (first.ok() && !s.ok()) first = s;
        }
        IOLAP_RETURN_IF_ERROR(first);
      }
    }

    // Merge passes. The final pass (one output run) writes straight back
    // into the original file.
    TraceSpan merge_span("sort.merge");
    merge_span.AddArg("runs", static_cast<int64_t>(runs.size()));
    FileId src = scratch_a;
    FileId dst = scratch_b;
    const int64_t fan_in = budget_pages_ - 1;
    while (runs.size() > 1) {
      bool final_pass = static_cast<int64_t>(runs.size()) <= fan_in;
      FileId out_file = final_pass ? file->file_id() : dst;
      std::vector<Run> next_runs;
      int64_t out_page = final_pass ? begin / kRpp : 0;
      for (size_t group_begin = 0; group_begin < runs.size();
           group_begin += static_cast<size_t>(fan_in)) {
        size_t group_end =
            std::min(runs.size(), group_begin + static_cast<size_t>(fan_in));
        int64_t merged = 0;
        IOLAP_RETURN_IF_ERROR(MergeRuns(
            src, out_file, out_page,
            std::vector<Run>(runs.begin() + group_begin,
                             runs.begin() + group_end),
            less, &merged));
        next_runs.push_back(Run{out_page, merged});
        out_page += (merged + kRpp - 1) / kRpp;
      }
      runs = std::move(next_runs);
      std::swap(src, dst);
    }

    IOLAP_RETURN_IF_ERROR(disk_->DeleteFile(scratch_a));
    IOLAP_RETURN_IF_ERROR(disk_->DeleteFile(scratch_b));
    return Status::Ok();
  }

 private:
  static constexpr int64_t kRpp = TypedFile<T>::kRecordsPerPage;

  /// Pages moved per disk transfer outside the merge (run generation and
  /// the fast path). `merge_block_pages == 1` reproduces the classic
  /// page-at-a-time pattern; auto (0) uses half the budget per transfer.
  int64_t IoBlockPages() const {
    if (io_.merge_block_pages > 0) return io_.merge_block_pages;
    return std::max<int64_t>(1, budget_pages_ / 2);
  }

  Status ReadPageRange(FileId file, int64_t first_page, int64_t npages,
                       std::byte* buf) {
    const int64_t blk = IoBlockPages();
    for (int64_t p = 0; p < npages; p += blk) {
      int64_t n = std::min(blk, npages - p);
      IOLAP_RETURN_IF_ERROR(
          disk_->ReadPages(file, first_page + p, n, buf + p * kPageSize));
    }
    return Status::Ok();
  }

  Status WritePageRange(FileId file, int64_t first_page, int64_t npages,
                        const std::byte* buf) {
    const int64_t blk = IoBlockPages();
    for (int64_t p = 0; p < npages; p += blk) {
      int64_t n = std::min(blk, npages - p);
      IOLAP_RETURN_IF_ERROR(
          disk_->WritePages(file, first_page + p, n, buf + p * kPageSize));
    }
    return Status::Ok();
  }

  /// Every chunk sort in the sorter is *stable* (equal records keep their
  /// input order). Combined with the merges' lower-run-index tie rule this
  /// makes the full sorted output one well-defined total order that every
  /// pipeline setting — classic or overhauled, any thread count — must
  /// reproduce bit for bit, even for comparators with ties.
  struct Keyed {
    uint64_t key;  // normalized key prefix (see SorterKeyPrefix)
    int64_t idx;   // input position, also the final tie-break
  };

  /// Whether run generation takes the normalized-key fast path: requires a
  /// KeyPrefix comparator and the overhauled pipeline. The classic pipeline
  /// (`merge_block_pages == 1`, the measurable baseline) keeps sorting
  /// whole records.
  bool UseKeyedSort() const { return io_.merge_block_pages != 1; }

  /// Stably sorts (prefix, index) pairs into the order `less` defines over
  /// the records behind them: byte-skipping LSD radix on the 8-byte prefix,
  /// then a fallback comparison sort inside each equal-prefix group.
  /// `rec_at(idx)` must return the record at input position `idx`.
  template <typename Less, typename RecAt>
  static void SortKeyed(std::vector<Keyed>* keys, const Less& less,
                        const RecAt& rec_at) {
    const int64_t n = static_cast<int64_t>(keys->size());
    std::vector<Keyed> tmp(n);
    for (int shift = 0; shift < 64; shift += 8) {
      int32_t count[257] = {0};
      for (int64_t i = 0; i < n; ++i) {
        ++count[(((*keys)[i].key >> shift) & 255) + 1];
      }
      bool single_bucket = false;
      for (int b = 1; b <= 256; ++b) {
        if (count[b] == n) {
          single_bucket = true;
          break;
        }
      }
      if (single_bucket) continue;  // byte constant across the chunk
      for (int b = 1; b <= 256; ++b) count[b] += count[b - 1];
      for (int64_t i = 0; i < n; ++i) {
        tmp[count[((*keys)[i].key >> shift) & 255]++] = (*keys)[i];
      }
      keys->swap(tmp);
    }
    for (int64_t s = 0; s < n;) {
      int64_t e = s + 1;
      while (e < n && (*keys)[e].key == (*keys)[s].key) ++e;
      if (e - s > 1) {
        std::sort(keys->begin() + s, keys->begin() + e,
                  [&](const Keyed& a, const Keyed& b) {
                    if (less(*rec_at(a.idx), *rec_at(b.idx))) return true;
                    if (less(*rec_at(b.idx), *rec_at(a.idx))) return false;
                    return a.idx < b.idx;
                  });
      }
      s = e;
    }
  }

  static void UnpackRecords(const std::byte* pages, int64_t n, T* out) {
    for (int64_t r = 0; r < n;) {
      int64_t take = std::min<int64_t>(kRpp, n - r);
      std::memcpy(out + r, pages + (r / kRpp) * kPageSize, take * sizeof(T));
      r += take;
    }
  }

  static void PackRecords(const T* in, int64_t n, std::byte* pages) {
    for (int64_t r = 0; r < n;) {
      int64_t take = std::min<int64_t>(kRpp, n - r);
      std::memcpy(pages + (r / kRpp) * kPageSize, in + r, take * sizeof(T));
      r += take;
    }
  }

  /// Builds (prefix, index) keys straight from `n` records laid out in
  /// `pages`, sorts them stably, and gathers the records in sorted order
  /// into `out_pages` (same page layout; non-record bytes of `out_pages`
  /// are left untouched).
  template <typename Less>
  static void KeyedSortPages(const std::byte* pages, int64_t n,
                             const Less& less, std::byte* out_pages) {
    auto rec_at = [&](int64_t i) -> const T* {
      return reinterpret_cast<const T*>(pages + (i / kRpp) * kPageSize +
                                        (i % kRpp) * sizeof(T));
    };
    std::vector<Keyed> keys(n);
    {
      int64_t i = 0;
      for (int64_t p = 0; p * kRpp < n; ++p) {
        const T* rec = reinterpret_cast<const T*>(pages + p * kPageSize);
        int64_t take = std::min<int64_t>(kRpp, n - p * kRpp);
        for (int64_t s = 0; s < take; ++s, ++i) {
          keys[i] = Keyed{static_cast<uint64_t>(less.KeyPrefix(rec[s])), i};
        }
      }
    }
    SortKeyed(&keys, less, rec_at);
    int64_t j = 0;
    for (int64_t p = 0; p * kRpp < n; ++p) {
      T* rec = reinterpret_cast<T*>(out_pages + p * kPageSize);
      int64_t take = std::min<int64_t>(kRpp, n - p * kRpp);
      for (int64_t s = 0; s < take; ++s, ++j) {
        std::memcpy(&rec[s], rec_at(keys[j].idx), sizeof(T));
      }
    }
  }

  /// Fast path: reads the whole range, sorts, writes it back. Tail records
  /// sharing the final page (beyond the sorted range) ride along in the
  /// page images, so they are preserved without an extra read.
  template <typename Less>
  Status SortInMemory(FileId file, int64_t begin, int64_t count, Less less) {
    const int64_t first_page = begin / kRpp;
    const int64_t npages = (count + kRpp - 1) / kRpp;
    std::vector<std::byte> pages(static_cast<size_t>(npages) * kPageSize);
    IOLAP_RETURN_IF_ERROR(ReadPageRange(file, first_page, npages,
                                        pages.data()));
    if constexpr (SorterKeyPrefix<Less, T>) {
      if (UseKeyedSort()) {
        // Gather into a copy of the page images so tail records and slack
        // bytes stay exactly as the classic path leaves them.
        std::vector<std::byte> sorted(pages);
        KeyedSortPages(pages.data(), count, less, sorted.data());
        return WritePageRange(file, first_page, npages, sorted.data());
      }
    }
    std::vector<T> records(count);
    UnpackRecords(pages.data(), count, records.data());
    std::stable_sort(records.begin(), records.end(), less);
    PackRecords(records.data(), count, pages.data());
    return WritePageRange(file, first_page, npages, pages.data());
  }

  /// Sorts one budget-sized chunk of input into its preallocated scratch
  /// range. Pure function of its arguments — safe to run on any worker.
  /// A partial final page is written with a zeroed tail (the scratch file
  /// is fresh, so there is nothing to preserve and no read-modify-write).
  template <typename Less>
  Status GenerateRun(FileId in, int64_t in_begin, FileId out,
                     int64_t out_page, int64_t n, Less less) {
    const int64_t first_page = in_begin / kRpp;  // in_begin is page-aligned
    const int64_t npages = (n + kRpp - 1) / kRpp;
    std::vector<std::byte> pages(static_cast<size_t>(npages) * kPageSize);
    IOLAP_RETURN_IF_ERROR(ReadPageRange(in, first_page, npages, pages.data()));
    if constexpr (SorterKeyPrefix<Less, T>) {
      if (UseKeyedSort()) {
        // Fused keyed sort: keys are built straight from the page images
        // and the records gathered straight into a fresh (zeroed) paginated
        // buffer, skipping the unpack/pack copies of the generic path.
        std::vector<std::byte> sorted(pages.size());  // value-init: slack = 0
        KeyedSortPages(pages.data(), n, less, sorted.data());
        return WritePageRange(out, out_page, npages, sorted.data());
      }
    }
    std::vector<T> records(n);
    UnpackRecords(pages.data(), n, records.data());
    std::stable_sort(records.begin(), records.end(), less);
    std::memset(pages.data(), 0, pages.size());
    PackRecords(records.data(), n, pages.data());
    return WritePageRange(out, out_page, npages, pages.data());
  }

  /// Merges one group of runs. The pipelined path is a loser tree: each
  /// run streams through a block buffer of several pages and the merged
  /// output is flushed a block at a time, so heap churn and per-page
  /// syscalls are gone while the page I/O count matches the page-at-a-time
  /// merge exactly. `merge_block_pages == 1` selects the classic
  /// priority-queue merge (the pre-overhaul baseline). Both paths break
  /// key ties by run index, so the merged order — and the sorted file's
  /// bytes — are identical whichever runs.
  template <typename Run, typename Less>
  Status MergeRuns(FileId src, FileId out_file, int64_t out_start_page,
                   std::vector<Run> group, Less less, int64_t* merged_out) {
    if (io_.merge_block_pages == 1) {
      return MergeRunsClassic(src, out_file, out_start_page, std::move(group),
                              less, merged_out);
    }
    const size_t k = group.size();
    // Split the budget across the k inputs plus the output stream.
    int64_t block = io_.merge_block_pages > 0
                        ? io_.merge_block_pages
                        : std::max<int64_t>(
                              1, budget_pages_ /
                                     static_cast<int64_t>(k + 1));

    struct RunCursor {
      std::vector<std::byte> buf;
      const std::byte* rec = nullptr;  // current record within buf
      int64_t page_left = 0;   // records left on the current buf page
      int64_t loaded_left = 0; // records left in buf (including this page)
      int64_t next_page = 0;   // next src page to load
      int64_t end_page = 0;    // one past the run's last page
      int64_t left = 0;        // records not yet loaded
      bool done = false;       // run fully consumed
    };
    std::vector<RunCursor> cur(k);
    // Normalized key of each run's current record (see SorterKeyPrefix):
    // most matches resolve on one integer compare.
    std::vector<uint64_t> key8(SorterKeyPrefix<Less, T> ? k : 0);

    auto head_of = [&](size_t i) -> const T* {
      return reinterpret_cast<const T*>(cur[i].rec);
    };
    auto load_key = [&](size_t i) {
      if constexpr (SorterKeyPrefix<Less, T>) {
        key8[i] = static_cast<uint64_t>(less.KeyPrefix(*head_of(i)));
      }
    };
    auto refill = [&](size_t i) -> Status {
      RunCursor& c = cur[i];
      if (c.left == 0) {
        c.done = true;
        return Status::Ok();
      }
      int64_t npages = std::min(block, c.end_page - c.next_page);
      IOLAP_RETURN_IF_ERROR(
          disk_->ReadPages(src, c.next_page, npages, c.buf.data()));
      c.next_page += npages;
      c.loaded_left = std::min(c.left, npages * kRpp);
      c.left -= c.loaded_left;
      c.rec = c.buf.data();
      c.page_left = std::min<int64_t>(kRpp, c.loaded_left);
      load_key(i);
      return Status::Ok();
    };
    // Page/block-boundary part of popping a record; the common within-page
    // pointer bump is inlined in the merge loop so no Status is
    // constructed per record. Returns non-OK only on a refill failure.
    auto advance_slow = [&](size_t i) -> Status {
      RunCursor& c = cur[i];
      if (c.loaded_left > 0) {
        // Next page of the already-loaded block.
        ptrdiff_t off = (c.rec - c.buf.data()) / kPageSize + 1;
        c.rec = c.buf.data() + off * kPageSize;
        c.page_left = std::min<int64_t>(kRpp, c.loaded_left);
        load_key(i);
        return Status::Ok();
      }
      return refill(i);
    };
    for (size_t i = 0; i < k; ++i) {
      cur[i].buf.resize(static_cast<size_t>(block) * kPageSize);
      cur[i].next_page = group[i].start_page;
      cur[i].end_page =
          group[i].start_page + (group[i].records + kRpp - 1) / kRpp;
      cur[i].left = group[i].records;
      IOLAP_RETURN_IF_ERROR(refill(i));
    }

    // Loser tree over the k runs. Operands are taken lowest index first, so
    // one strict less() per match both picks the winner and sends equal
    // keys to the lower run index — the deterministic order every pipeline
    // setting shares. Exhausted runs lose every match.
    auto winner_of = [&](size_t x, size_t y) -> size_t {
      size_t a = std::min(x, y);  // ties go to the lower run index
      size_t b = std::max(x, y);
      if (cur[a].done) return b;
      if (cur[b].done) return a;
      if constexpr (SorterKeyPrefix<Less, T>) {
        if (key8[a] != key8[b]) return key8[a] < key8[b] ? a : b;
      }
      return less(*head_of(b), *head_of(a)) ? b : a;
    };
    std::vector<size_t> loser(k, 0);
    size_t winner = 0;
    if (k > 1) {
      std::vector<size_t> w(2 * k);
      for (size_t i = 0; i < k; ++i) w[k + i] = i;
      for (size_t node = k - 1; node >= 1; --node) {
        size_t a = w[2 * node];
        size_t b = w[2 * node + 1];
        size_t win = winner_of(a, b);
        w[node] = win;
        loser[node] = (win == a) ? b : a;
      }
      winner = w[1];
    }

    std::vector<std::byte> out_buf(static_cast<size_t>(block) * kPageSize);
    std::memset(out_buf.data(), 0, out_buf.size());
    std::byte* out_rec = out_buf.data();
    int64_t out_page_left = kRpp;          // record slots left on this page
    int64_t out_pages_filled = 0;          // full pages in out_buf
    int64_t out_pg = out_start_page;
    int64_t total = 0;
    while (!cur[winner].done) {
      std::memcpy(out_rec, cur[winner].rec, sizeof(T));
      ++total;
      if (--out_page_left > 0) {
        out_rec += sizeof(T);
      } else if (++out_pages_filled < block) {
        out_rec = out_buf.data() + out_pages_filled * kPageSize;
        out_page_left = kRpp;
      } else {
        IOLAP_RETURN_IF_ERROR(
            disk_->WritePages(out_file, out_pg, block, out_buf.data()));
        out_pg += block;
        std::memset(out_buf.data(), 0, out_buf.size());
        out_rec = out_buf.data();
        out_page_left = kRpp;
        out_pages_filled = 0;
      }
      RunCursor& c = cur[winner];
      --c.loaded_left;
      if (--c.page_left > 0) {
        c.rec += sizeof(T);
        load_key(winner);
      } else {
        IOLAP_RETURN_IF_ERROR(advance_slow(winner));
      }
      if (k > 1) {
        size_t cand = winner;
        for (size_t node = (k + winner) / 2; node >= 1; node /= 2) {
          size_t win = winner_of(cand, loser[node]);
          if (win != cand) {
            std::swap(cand, loser[node]);
            cand = win;
          }
        }
        winner = cand;
      }
    }
    int64_t out_slot = out_pages_filled * kRpp + (kRpp - out_page_left);
    if (out_slot > 0) {
      int64_t full = out_slot / kRpp;
      int64_t rem = out_slot % kRpp;
      if (full > 0) {
        IOLAP_RETURN_IF_ERROR(
            disk_->WritePages(out_file, out_pg, full, out_buf.data()));
        out_pg += full;
      }
      if (rem > 0) {
        // Partial final page: preserve any pre-existing records in the tail
        // slots (they belong to data beyond the sorted range).
        std::byte* last = out_buf.data() + full * kPageSize;
        IOLAP_ASSIGN_OR_RETURN(int64_t size, disk_->SizeInPages(out_file));
        if (out_pg < size) {
          alignas(16) std::byte existing[kPageSize];
          IOLAP_RETURN_IF_ERROR(disk_->ReadPage(out_file, out_pg, existing));
          std::memcpy(last + rem * sizeof(T), existing + rem * sizeof(T),
                      (kRpp - rem) * sizeof(T));
        }
        IOLAP_RETURN_IF_ERROR(disk_->WritePage(out_file, out_pg, last));
      }
    }
    *merged_out = total;
    return Status::Ok();
  }

  /// The pre-overhaul merge: a binary min-heap of (record, run index) with
  /// one page buffered per run and per-page output writes. Kept as the
  /// measurable baseline the pipelined merge is benchmarked against; ties
  /// break by run index exactly like the loser tree.
  template <typename Run, typename Less>
  Status MergeRunsClassic(FileId src, FileId out_file, int64_t out_start_page,
                          std::vector<Run> group, Less less,
                          int64_t* merged_out) {
    struct RunCursor {
      std::unique_ptr<std::byte[]> page;
      int64_t page_no = 0;    // absolute page in src
      int64_t slot = 0;       // record slot within page
      int64_t remaining = 0;  // records left in the run
    };
    std::vector<RunCursor> cursors(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      cursors[i].page = std::make_unique<std::byte[]>(kPageSize);
      cursors[i].page_no = group[i].start_page;
      cursors[i].remaining = group[i].records;
      IOLAP_RETURN_IF_ERROR(
          disk_->ReadPage(src, cursors[i].page_no, cursors[i].page.get()));
    }
    auto current = [&](size_t i) {
      T value;
      std::memcpy(&value, cursors[i].page.get() + cursors[i].slot * sizeof(T),
                  sizeof(T));
      return value;
    };
    // Min-heap of (record, run index); equal records pop lowest run first.
    auto heap_less = [&](const std::pair<T, size_t>& a,
                         const std::pair<T, size_t>& b) {
      if (less(b.first, a.first)) return true;  // invert for min-heap
      if (less(a.first, b.first)) return false;
      return b.second < a.second;
    };
    std::vector<std::pair<T, size_t>> heap;
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].remaining > 0) heap.emplace_back(current(i), i);
    }
    std::make_heap(heap.begin(), heap.end(), heap_less);

    auto out_page = std::make_unique<std::byte[]>(kPageSize);
    std::memset(out_page.get(), 0, kPageSize);
    int64_t out_slot = 0;
    int64_t out_pg = out_start_page;
    int64_t total = 0;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), heap_less);
      auto [value, run] = heap.back();
      heap.pop_back();
      std::memcpy(out_page.get() + out_slot * sizeof(T), &value, sizeof(T));
      ++total;
      if (++out_slot == kRpp) {
        IOLAP_RETURN_IF_ERROR(
            disk_->WritePage(out_file, out_pg, out_page.get()));
        std::memset(out_page.get(), 0, kPageSize);
        out_slot = 0;
        ++out_pg;
      }
      RunCursor& cur = cursors[run];
      if (--cur.remaining > 0) {
        if (++cur.slot == kRpp) {
          cur.slot = 0;
          ++cur.page_no;
          IOLAP_RETURN_IF_ERROR(
              disk_->ReadPage(src, cur.page_no, cur.page.get()));
        }
        heap.emplace_back(current(run), run);
        std::push_heap(heap.begin(), heap.end(), heap_less);
      }
    }
    if (out_slot > 0) {
      // Partial final page: preserve any pre-existing records in the tail
      // slots (they belong to data beyond the sorted range).
      IOLAP_ASSIGN_OR_RETURN(int64_t size, disk_->SizeInPages(out_file));
      if (out_pg < size) {
        alignas(16) std::byte existing[kPageSize];
        IOLAP_RETURN_IF_ERROR(disk_->ReadPage(out_file, out_pg, existing));
        std::memcpy(out_page.get() + out_slot * sizeof(T),
                    existing + out_slot * sizeof(T),
                    (kRpp - out_slot) * sizeof(T));
      }
      IOLAP_RETURN_IF_ERROR(
          disk_->WritePage(out_file, out_pg, out_page.get()));
    }
    *merged_out = total;
    return Status::Ok();
  }

  DiskManager* disk_;
  BufferPool* pool_;
  int64_t budget_pages_;
  IoPipelineOptions io_;
};

}  // namespace iolap

#endif  // IOLAP_STORAGE_EXTERNAL_SORT_H_
