#ifndef IOLAP_STORAGE_EXTERNAL_SORT_H_
#define IOLAP_STORAGE_EXTERNAL_SORT_H_

#include <algorithm>
#include <cstring>
#include <memory>
#include <queue>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/paged_file.h"

namespace iolap {

/// Classic external merge sort over a TypedFile, restricted to
/// `budget_pages` pages of private working memory: run generation sorts
/// budget-sized chunks, then (budget-1)-way merge passes combine them. For
/// the data-to-memory ratios in the paper's experiments this is the standard
/// two-pass sort its cost model assumes (read+write every page twice).
///
/// The sorter bypasses the buffer pool (its memory *is* the budget); the
/// caller's pool pages for the file are flushed and evicted first so both
/// channels stay coherent. All traffic is counted by the DiskManager.
template <typename T>
class ExternalSorter {
 public:
  ExternalSorter(DiskManager* disk, BufferPool* pool, int64_t budget_pages)
      : disk_(disk), pool_(pool), budget_pages_(std::max<int64_t>(budget_pages, 3)) {}

  template <typename Less>
  Status Sort(TypedFile<T>* file, Less less) {
    return SortRange(file, 0, file->size(), less);
  }

  /// Sorts records [begin, end) of `file` in place. `begin` must be
  /// page-aligned (summary-table segments are laid out page-aligned by the
  /// preprocessor for exactly this reason).
  template <typename Less>
  Status SortRange(TypedFile<T>* file, int64_t begin, int64_t end,
                   Less less) {
    const int64_t count = end - begin;
    if (begin % kRpp != 0) {
      return Status::InvalidArgument("sort range start not page-aligned");
    }
    if (begin < 0 || end > file->size()) {
      return Status::OutOfRange("sort range outside file");
    }
    IOLAP_RETURN_IF_ERROR(pool_->EvictFile(file->file_id()));
    if (count <= 1) return Status::Ok();

    const int64_t budget_records = budget_pages_ * kRpp;

    // Fast path: the whole range fits in the sort budget.
    if (count <= budget_records) {
      std::vector<T> records(count);
      IOLAP_RETURN_IF_ERROR(ReadRecords(file->file_id(), begin, count,
                                        records.data()));
      std::sort(records.begin(), records.end(), less);
      return WriteRecords(file->file_id(), begin, count, records.data());
    }

    // Pass 0: run generation.
    struct Run {
      int64_t start_page;  // within the scratch file
      int64_t records;
    };
    IOLAP_ASSIGN_OR_RETURN(FileId scratch_a, disk_->CreateFile("sort_a"));
    IOLAP_ASSIGN_OR_RETURN(FileId scratch_b, disk_->CreateFile("sort_b"));
    std::vector<Run> runs;
    {
      std::vector<T> chunk;
      chunk.reserve(budget_records);
      int64_t next_page = 0;
      for (int64_t offset = 0; offset < count; offset += budget_records) {
        int64_t n = std::min(budget_records, count - offset);
        chunk.resize(n);
        IOLAP_RETURN_IF_ERROR(
            ReadRecords(file->file_id(), begin + offset, n, chunk.data()));
        std::sort(chunk.begin(), chunk.end(), less);
        IOLAP_RETURN_IF_ERROR(
            WriteRecords(scratch_a, next_page * kRpp, n, chunk.data()));
        runs.push_back(Run{next_page, n});
        next_page += (n + kRpp - 1) / kRpp;
      }
    }

    // Merge passes. The final pass (one output run) writes straight back
    // into the original file.
    FileId src = scratch_a;
    FileId dst = scratch_b;
    const int64_t fan_in = budget_pages_ - 1;
    while (runs.size() > 1) {
      bool final_pass = static_cast<int64_t>(runs.size()) <= fan_in;
      FileId out_file = final_pass ? file->file_id() : dst;
      std::vector<Run> next_runs;
      int64_t out_page = final_pass ? begin / kRpp : 0;
      for (size_t begin = 0; begin < runs.size();
           begin += static_cast<size_t>(fan_in)) {
        size_t end = std::min(runs.size(), begin + static_cast<size_t>(fan_in));
        int64_t merged = 0;
        IOLAP_RETURN_IF_ERROR(MergeRuns(
            src, out_file, out_page,
            std::vector<Run>(runs.begin() + begin, runs.begin() + end), less,
            &merged));
        next_runs.push_back(Run{out_page, merged});
        out_page += (merged + kRpp - 1) / kRpp;
      }
      runs = std::move(next_runs);
      std::swap(src, dst);
    }

    IOLAP_RETURN_IF_ERROR(disk_->DeleteFile(scratch_a));
    IOLAP_RETURN_IF_ERROR(disk_->DeleteFile(scratch_b));
    return Status::Ok();
  }

 private:
  static constexpr int64_t kRpp = TypedFile<T>::kRecordsPerPage;

  /// Reads `n` records starting at record `start` straight from disk.
  Status ReadRecords(FileId file, int64_t start, int64_t n, T* out) {
    alignas(16) std::byte page[kPageSize];
    int64_t read = 0;
    while (read < n) {
      int64_t index = start + read;
      PageId pg = index / kRpp;
      int64_t slot = index % kRpp;
      int64_t take = std::min(n - read, kRpp - slot);
      IOLAP_RETURN_IF_ERROR(disk_->ReadPage(file, pg, page));
      std::memcpy(out + read, page + slot * sizeof(T), take * sizeof(T));
      read += take;
    }
    return Status::Ok();
  }

  /// Writes `n` records starting at page-aligned record `start`. A partial
  /// final page is read-modify-written when it already exists so that
  /// records beyond the sorted range (e.g. a following segment's slots on a
  /// shared page) are preserved.
  Status WriteRecords(FileId file, int64_t start, int64_t n, const T* in) {
    alignas(16) std::byte page[kPageSize];
    int64_t written = 0;
    while (written < n) {
      int64_t index = start + written;
      PageId pg = index / kRpp;
      int64_t slot = index % kRpp;
      int64_t take = std::min(n - written, kRpp - slot);
      if (slot != 0) {
        return Status::Internal("unaligned external-sort write");
      }
      if (take < kRpp) {
        IOLAP_ASSIGN_OR_RETURN(int64_t size, disk_->SizeInPages(file));
        if (pg < size) {
          IOLAP_RETURN_IF_ERROR(disk_->ReadPage(file, pg, page));
        } else {
          std::memset(page, 0, kPageSize);
        }
      }
      std::memcpy(page + slot * sizeof(T), in + written, take * sizeof(T));
      IOLAP_RETURN_IF_ERROR(disk_->WritePage(file, pg, page));
      written += take;
    }
    return Status::Ok();
  }

  template <typename Run, typename Less>
  Status MergeRuns(FileId src, FileId out_file, int64_t out_start_page,
                   std::vector<Run> group, Less less, int64_t* merged_out) {
    struct RunCursor {
      std::unique_ptr<std::byte[]> page;
      int64_t page_no = 0;      // absolute page in src
      int64_t slot = 0;         // record slot within page
      int64_t remaining = 0;    // records left in the run
    };
    std::vector<RunCursor> cursors(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      cursors[i].page = std::make_unique<std::byte[]>(kPageSize);
      cursors[i].page_no = group[i].start_page;
      cursors[i].remaining = group[i].records;
      IOLAP_RETURN_IF_ERROR(
          disk_->ReadPage(src, cursors[i].page_no, cursors[i].page.get()));
    }
    auto current = [&](size_t i) {
      T value;
      std::memcpy(&value, cursors[i].page.get() + cursors[i].slot * sizeof(T),
                  sizeof(T));
      return value;
    };
    // Min-heap of (record, run index).
    auto heap_less = [&](const std::pair<T, size_t>& a,
                         const std::pair<T, size_t>& b) {
      return less(b.first, a.first);  // invert for min-heap
    };
    std::vector<std::pair<T, size_t>> heap;
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].remaining > 0) heap.emplace_back(current(i), i);
    }
    std::make_heap(heap.begin(), heap.end(), heap_less);

    auto out_page = std::make_unique<std::byte[]>(kPageSize);
    std::memset(out_page.get(), 0, kPageSize);
    int64_t out_slot = 0;
    int64_t out_pg = out_start_page;
    int64_t total = 0;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), heap_less);
      auto [value, run] = heap.back();
      heap.pop_back();
      std::memcpy(out_page.get() + out_slot * sizeof(T), &value, sizeof(T));
      ++total;
      if (++out_slot == kRpp) {
        IOLAP_RETURN_IF_ERROR(
            disk_->WritePage(out_file, out_pg, out_page.get()));
        std::memset(out_page.get(), 0, kPageSize);
        out_slot = 0;
        ++out_pg;
      }
      RunCursor& cur = cursors[run];
      if (--cur.remaining > 0) {
        if (++cur.slot == kRpp) {
          cur.slot = 0;
          ++cur.page_no;
          IOLAP_RETURN_IF_ERROR(
              disk_->ReadPage(src, cur.page_no, cur.page.get()));
        }
        heap.emplace_back(current(run), run);
        std::push_heap(heap.begin(), heap.end(), heap_less);
      }
    }
    if (out_slot > 0) {
      // Partial final page: preserve any pre-existing records in the tail
      // slots (they belong to data beyond the sorted range).
      IOLAP_ASSIGN_OR_RETURN(int64_t size, disk_->SizeInPages(out_file));
      if (out_pg < size) {
        alignas(16) std::byte existing[kPageSize];
        IOLAP_RETURN_IF_ERROR(disk_->ReadPage(out_file, out_pg, existing));
        std::memcpy(out_page.get() + out_slot * sizeof(T),
                    existing + out_slot * sizeof(T),
                    (kRpp - out_slot) * sizeof(T));
      }
      IOLAP_RETURN_IF_ERROR(
          disk_->WritePage(out_file, out_pg, out_page.get()));
    }
    *merged_out = total;
    return Status::Ok();
  }

  DiskManager* disk_;
  BufferPool* pool_;
  int64_t budget_pages_;
};

}  // namespace iolap

#endif  // IOLAP_STORAGE_EXTERNAL_SORT_H_
