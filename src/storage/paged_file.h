#ifndef IOLAP_STORAGE_PAGED_FILE_H_
#define IOLAP_STORAGE_PAGED_FILE_H_

#include <algorithm>
#include <cstring>
#include <type_traits>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace iolap {

/// A file of fixed-size, trivially copyable records, `RecordsPerPage` to a
/// page (records never span pages; the page tail is padding). All access
/// goes through a BufferPool so I/O is counted and memory-bounded.
///
/// The record count lives in memory for the lifetime of the process; these
/// are working files of a single allocation run, not a persistent store.
template <typename T>
class TypedFile {
  static_assert(std::is_trivially_copyable_v<T>,
                "TypedFile records must be trivially copyable");
  static_assert(sizeof(T) <= kPageSize, "record larger than a page");

 public:
  static constexpr int64_t kRecordsPerPage =
      static_cast<int64_t>(kPageSize / sizeof(T));

  TypedFile() = default;
  TypedFile(FileId file, int64_t record_count)
      : file_(file), count_(record_count) {}

  static Result<TypedFile<T>> Create(DiskManager& disk,
                                     const std::string& hint) {
    IOLAP_ASSIGN_OR_RETURN(FileId id, disk.CreateFile(hint));
    return TypedFile<T>(id, 0);
  }

  FileId file_id() const { return file_; }
  int64_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  int64_t size_in_pages() const {
    return (count_ + kRecordsPerPage - 1) / kRecordsPerPage;
  }
  static PageId PageOf(int64_t index) { return index / kRecordsPerPage; }
  static int64_t SlotOf(int64_t index) { return index % kRecordsPerPage; }

  /// Adjusts the logical record count (used after external sorts or bulk
  /// loads performed outside the typed interface).
  void set_size(int64_t count) { count_ = count; }

  /// Rounds the record count up to the next page boundary. The skipped
  /// slots stay zeroed on disk and are never part of any scan range.
  /// (The preprocessor pads with explicit sentinel records instead, so
  /// whole-file sorts remain well-defined; this stays for callers that can
  /// guarantee the padded range is never scanned or sorted.)
  void PadToPageBoundary() {
    count_ = ((count_ + kRecordsPerPage - 1) / kRecordsPerPage) *
             kRecordsPerPage;
  }

  Result<T> Get(BufferPool& pool, int64_t index) const {
    if (index < 0 || index >= count_) {
      return Status::OutOfRange("record index " + std::to_string(index) +
                                " out of range [0," + std::to_string(count_) +
                                ")");
    }
    IOLAP_ASSIGN_OR_RETURN(PageGuard guard, pool.Pin(file_, PageOf(index)));
    T out;
    std::memcpy(&out, guard.data() + SlotOf(index) * sizeof(T), sizeof(T));
    return out;
  }

  Status Put(BufferPool& pool, int64_t index, const T& value) {
    if (index < 0 || index > count_) {
      return Status::OutOfRange("record index " + std::to_string(index) +
                                " out of range [0," + std::to_string(count_) +
                                "]");
    }
    PageId page = PageOf(index);
    PageGuard guard;
    if (index == count_ && SlotOf(index) == 0) {
      IOLAP_ASSIGN_OR_RETURN(guard, pool.PinNew(file_, page));
    } else {
      IOLAP_ASSIGN_OR_RETURN(guard, pool.Pin(file_, page));
    }
    std::memcpy(guard.data() + SlotOf(index) * sizeof(T), &value, sizeof(T));
    guard.MarkDirty();
    if (index == count_) ++count_;
    return Status::Ok();
  }

  Status Append(BufferPool& pool, const T& value) {
    return Put(pool, count_, value);
  }

  /// Sequential reader holding a single pinned page; advancing across a page
  /// boundary swaps the pin. `mutate` selects read-modify-write scans: the
  /// page is marked dirty and `Set()` becomes available. When the pool has
  /// read-ahead configured, every page-boundary pin hints the next stretch
  /// of the scan range to the pool's prefetcher.
  class Cursor {
   public:
    Cursor(const TypedFile<T>* file, BufferPool* pool, int64_t start,
           int64_t end, bool mutate)
        : file_(file), pool_(pool), index_(start), end_(end),
          mutate_(mutate) {}

    bool done() const { return index_ >= end_; }
    int64_t index() const { return index_; }

    /// Reads the current record.
    Status Read(T* out) {
      IOLAP_RETURN_IF_ERROR(EnsurePage());
      std::memcpy(out, guard_.data() + SlotOf(index_) * sizeof(T), sizeof(T));
      return Status::Ok();
    }

    /// Overwrites the current record (mutating cursors only).
    Status Write(const T& value) {
      if (!mutate_) {
        return Status::FailedPrecondition("Write on a read-only cursor");
      }
      IOLAP_RETURN_IF_ERROR(EnsurePage());
      std::memcpy(guard_.data() + SlotOf(index_) * sizeof(T), &value,
                  sizeof(T));
      guard_.MarkDirty();
      return Status::Ok();
    }

    void Advance() {
      ++index_;
      if (SlotOf(index_) == 0) guard_.Release();
    }

    /// Reads the current record and advances.
    Status Next(T* out) {
      IOLAP_RETURN_IF_ERROR(Read(out));
      Advance();
      return Status::Ok();
    }

   private:
    Status EnsurePage() {
      if (index_ >= end_) return Status::OutOfRange("cursor exhausted");
      if (!guard_.valid()) {
        PageId page = PageOf(index_);
        IOLAP_ASSIGN_OR_RETURN(guard_, pool_->Pin(file_->file_id(), page));
        MaybeReadAhead(page);
      }
      return Status::Ok();
    }

    /// Hints the pages the scan will pin next, never re-hinting a page and
    /// never past the scan range.
    void MaybeReadAhead(PageId page) {
      int64_t ra = pool_->read_ahead_pages();
      if (ra <= 0) return;
      PageId last = PageOf(end_ - 1);
      PageId from = std::max(page + 1, hinted_until_);
      PageId to = std::min(page + 1 + ra, last + 1);
      if (from < to) {
        pool_->Prefetch(file_->file_id(), from, to - from);
        hinted_until_ = to;
      }
    }

    const TypedFile<T>* file_;
    BufferPool* pool_;
    int64_t index_;
    int64_t end_;
    bool mutate_;
    PageId hinted_until_ = 0;
    PageGuard guard_;
  };

  Cursor Scan(BufferPool& pool, int64_t start = 0, int64_t end = -1) const {
    return Cursor(this, &pool, start, end < 0 ? count_ : end,
                  /*mutate=*/false);
  }
  Cursor MutableScan(BufferPool& pool, int64_t start = 0,
                     int64_t end = -1) const {
    return Cursor(this, &pool, start, end < 0 ? count_ : end, /*mutate=*/true);
  }

  /// Buffered appender: pins the tail page once per page's worth of appends.
  class Appender {
   public:
    Appender(TypedFile<T>* file, BufferPool* pool)
        : file_(file), pool_(pool) {}

    Status Append(const T& value) {
      int64_t index = file_->count_;
      if (SlotOf(index) == 0) {
        guard_.Release();
        IOLAP_ASSIGN_OR_RETURN(guard_,
                               pool_->PinNew(file_->file_id(), PageOf(index)));
      } else if (!guard_.valid()) {
        IOLAP_ASSIGN_OR_RETURN(guard_,
                               pool_->Pin(file_->file_id(), PageOf(index)));
      }
      std::memcpy(guard_.data() + SlotOf(index) * sizeof(T), &value,
                  sizeof(T));
      guard_.MarkDirty();
      ++file_->count_;
      return Status::Ok();
    }

    void Close() { guard_.Release(); }

   private:
    TypedFile<T>* file_;
    BufferPool* pool_;
    PageGuard guard_;
  };

  Appender MakeAppender(BufferPool& pool) { return Appender(this, &pool); }

 private:
  FileId file_ = kInvalidFileId;
  int64_t count_ = 0;
};

}  // namespace iolap

#endif  // IOLAP_STORAGE_PAGED_FILE_H_
