#ifndef IOLAP_STORAGE_STORAGE_ENV_H_
#define IOLAP_STORAGE_STORAGE_ENV_H_

#include <memory>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace iolap {

/// Bundles the disk manager and buffer pool that a whole allocation run
/// shares. `buffer_pages` is the memory budget `B` from the paper's cost
/// model; it bounds both the pool and the external-sort working memory.
class StorageEnv {
 public:
  StorageEnv(std::string directory, size_t buffer_pages)
      : disk_(std::make_unique<DiskManager>(std::move(directory))),
        pool_(std::make_unique<BufferPool>(disk_.get(), buffer_pages)) {}

  DiskManager& disk() { return *disk_; }
  BufferPool& pool() { return *pool_; }
  int64_t buffer_pages() const {
    return static_cast<int64_t>(pool_->capacity_pages());
  }

 private:
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
};

}  // namespace iolap

#endif  // IOLAP_STORAGE_STORAGE_ENV_H_
