#include "storage/extent.h"

#include <algorithm>

namespace iolap {
namespace {

// Appends `len` raw bytes to `out`.
void AppendBytes(const void* src, int64_t len, std::vector<std::byte>* out) {
  const auto* p = static_cast<const std::byte*>(src);
  out->insert(out->end(), p, p + len);
}

// Appends one LEB128 varint.
void AppendVarint(uint64_t v, std::vector<std::byte>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<std::byte>(v));
}

// Reads one LEB128 varint from [p, end); advances p. False on truncation or
// a varint longer than kMaxVarintBytes.
bool ReadVarint(const std::byte** p, const std::byte* end, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < kMaxVarintBytes; ++i) {
    if (*p == end) return false;
    const uint8_t b = static_cast<uint8_t>(**p);
    ++*p;
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

// Fixed code width for a dictionary of `dict_size` entries.
int DictCodeWidth(uint32_t dict_size) {
  if (dict_size <= 1) return 0;
  if (dict_size <= (1u << 8)) return 1;
  if (dict_size <= (1u << 16)) return 2;
  return 4;
}

}  // namespace

ColumnDesc EncodePlain64(const void* vals, int64_t n,
                         std::vector<std::byte>* out) {
  ColumnDesc desc;
  desc.encoding = static_cast<uint16_t>(ColumnEncoding::kPlain64);
  desc.byte_length = 8 * n;
  AppendBytes(vals, desc.byte_length, out);
  return desc;
}

ColumnDesc EncodePlain32(const int32_t* vals, int64_t n,
                         std::vector<std::byte>* out) {
  ColumnDesc desc;
  desc.encoding = static_cast<uint16_t>(ColumnEncoding::kPlain32);
  desc.byte_length = 4 * n;
  AppendBytes(vals, desc.byte_length, out);
  return desc;
}

ColumnDesc EncodeInt32Auto(const int32_t* vals, int64_t n,
                           std::vector<std::byte>* out) {
  // Build the ascending dictionary; codes index it by lower_bound.
  std::vector<int32_t> dict(vals, vals + n);
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  const auto dict_size = static_cast<uint32_t>(dict.size());
  const int width = DictCodeWidth(dict_size);
  const int64_t dict_bytes =
      4 + 4 * static_cast<int64_t>(dict_size) + width * n;
  if (n == 0 || dict_bytes >= 4 * n) return EncodePlain32(vals, n, out);

  ColumnDesc desc;
  desc.encoding = static_cast<uint16_t>(ColumnEncoding::kDict32);
  desc.dict_size = dict_size;
  desc.byte_length = dict_bytes;
  out->reserve(out->size() + dict_bytes);
  AppendBytes(&dict_size, 4, out);
  AppendBytes(dict.data(), 4 * static_cast<int64_t>(dict_size), out);
  for (int64_t i = 0; i < n; ++i) {
    const auto code = static_cast<uint32_t>(
        std::lower_bound(dict.begin(), dict.end(), vals[i]) - dict.begin());
    AppendBytes(&code, width, out);
  }
  return desc;
}

ColumnDesc EncodeDeltaZigZag64(const int64_t* vals, int64_t n,
                               std::vector<std::byte>* out) {
  ColumnDesc desc;
  desc.encoding = static_cast<uint16_t>(ColumnEncoding::kDeltaZigZag64);
  const size_t start = out->size();
  if (n > 0) {
    AppendBytes(&vals[0], 8, out);
    for (int64_t i = 1; i < n; ++i) {
      AppendVarint(
          ZigZagEncode64(static_cast<int64_t>(static_cast<uint64_t>(vals[i]) -
                                              static_cast<uint64_t>(vals[i - 1]))),
          out);
    }
  }
  desc.byte_length = static_cast<int64_t>(out->size() - start);
  return desc;
}

ColumnWindows WindowsFor(const ColumnDesc& col, int64_t row_begin,
                         int64_t row_end) {
  ColumnWindows w;
  switch (static_cast<ColumnEncoding>(col.encoding)) {
    case ColumnEncoding::kPlain64:
      w.body = {8 * row_begin, 8 * row_end};
      break;
    case ColumnEncoding::kPlain32:
      w.body = {4 * row_begin, 4 * row_end};
      break;
    case ColumnEncoding::kDict32: {
      const int64_t code_off = 4 + 4 * static_cast<int64_t>(col.dict_size);
      const int64_t width = DictCodeWidth(col.dict_size);
      w.head = {0, code_off};
      w.body = {code_off + width * row_begin, code_off + width * row_end};
      break;
    }
    case ColumnEncoding::kDeltaZigZag64:
      w.body = {0, row_end == 0
                       ? 0
                       : std::min(col.byte_length,
                                  8 + kMaxVarintBytes * (row_end - 1))};
      break;
  }
  return w;
}

Status DecodePlain64(const ColumnDesc& col, const std::byte* body,
                     int64_t body_len, int64_t row_begin, int64_t row_end,
                     void* out) {
  if (col.encoding != static_cast<uint16_t>(ColumnEncoding::kPlain64)) {
    return Status::InvalidArgument("DecodePlain64: wrong encoding");
  }
  const int64_t need = 8 * (row_end - row_begin);
  if (need < 0 || body_len < need || 8 * row_end > col.byte_length) {
    return Status::InvalidArgument("DecodePlain64: window too small");
  }
  std::memcpy(out, body, static_cast<size_t>(need));
  return Status::Ok();
}

Status DecodeInt32(const ColumnDesc& col, const std::byte* head,
                   int64_t head_len, const std::byte* body, int64_t body_len,
                   int64_t row_begin, int64_t row_end, int32_t* out) {
  const int64_t rows = row_end - row_begin;
  if (rows < 0) return Status::InvalidArgument("DecodeInt32: bad row range");
  if (col.encoding == static_cast<uint16_t>(ColumnEncoding::kPlain32)) {
    if (body_len < 4 * rows || 4 * row_end > col.byte_length) {
      return Status::InvalidArgument("DecodeInt32: window too small");
    }
    std::memcpy(out, body, static_cast<size_t>(4 * rows));
    return Status::Ok();
  }
  if (col.encoding != static_cast<uint16_t>(ColumnEncoding::kDict32)) {
    return Status::InvalidArgument("DecodeInt32: wrong encoding");
  }
  const int64_t dict_bytes = 4 * static_cast<int64_t>(col.dict_size);
  if (head_len < 4 + dict_bytes) {
    return Status::InvalidArgument("DecodeInt32: dictionary window too small");
  }
  uint32_t stored_size = 0;
  std::memcpy(&stored_size, head, 4);
  if (stored_size != col.dict_size) {
    return Status::InvalidArgument("DecodeInt32: dictionary size mismatch");
  }
  const auto* dict = head + 4;
  const int64_t width = DictCodeWidth(col.dict_size);
  if (body_len < width * rows) {
    return Status::InvalidArgument("DecodeInt32: code window too small");
  }
  if (width == 0) {
    // Constant column: every row is the single dictionary entry.
    if (col.dict_size == 0 && rows > 0) {
      return Status::InvalidArgument("DecodeInt32: empty dictionary");
    }
    int32_t only = 0;
    if (col.dict_size == 1) std::memcpy(&only, dict, 4);
    std::fill(out, out + rows, only);
    return Status::Ok();
  }
  for (int64_t i = 0; i < rows; ++i) {
    uint32_t code = 0;
    std::memcpy(&code, body + width * i, static_cast<size_t>(width));
    if (code >= col.dict_size) {
      return Status::InvalidArgument("DecodeInt32: code out of range");
    }
    std::memcpy(&out[i], dict + 4 * static_cast<int64_t>(code), 4);
  }
  return Status::Ok();
}

Status DecodeDeltaZigZag64(const ColumnDesc& col, const std::byte* body,
                           int64_t body_len, int64_t row_begin,
                           int64_t row_end, int64_t* out) {
  if (col.encoding != static_cast<uint16_t>(ColumnEncoding::kDeltaZigZag64)) {
    return Status::InvalidArgument("DecodeDeltaZigZag64: wrong encoding");
  }
  if (row_begin < 0 || row_end < row_begin) {
    return Status::InvalidArgument("DecodeDeltaZigZag64: bad row range");
  }
  if (row_end == 0) return Status::Ok();
  if (body_len < 8) {
    return Status::InvalidArgument("DecodeDeltaZigZag64: truncated base");
  }
  int64_t value = 0;
  std::memcpy(&value, body, 8);
  if (row_begin == 0) out[0] = value;
  const std::byte* p = body + 8;
  const std::byte* end = body + body_len;
  for (int64_t row = 1; row < row_end; ++row) {
    uint64_t zz = 0;
    if (!ReadVarint(&p, end, &zz)) {
      return Status::InvalidArgument("DecodeDeltaZigZag64: truncated varint");
    }
    value = static_cast<int64_t>(static_cast<uint64_t>(value) +
                                 static_cast<uint64_t>(ZigZagDecode64(zz)));
    if (row >= row_begin) out[row - row_begin] = value;
  }
  return Status::Ok();
}

}  // namespace iolap
