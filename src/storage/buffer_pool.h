#ifndef IOLAP_STORAGE_BUFFER_POOL_H_
#define IOLAP_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/io_stats.h"

namespace iolap {

class BufferPool;

/// RAII pin on a buffer-pool page. While alive, the frame cannot be evicted
/// and `data()` stays valid. Call `MarkDirty()` after mutating the page so
/// the pool writes it back on eviction/flush. A guard may be moved across
/// threads but must be used by one thread at a time.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, int32_t frame);
  ~PageGuard();

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;

  bool valid() const { return pool_ != nullptr; }
  std::byte* data();
  const std::byte* data() const;
  void MarkDirty();

  /// Drops the pin early (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  int32_t frame_ = -1;
};

/// Fixed-capacity LRU buffer pool over a DiskManager. This is the memory
/// budget `B` in the paper's cost model: every algorithm accesses table
/// pages exclusively through the pool, so restricting the pool's capacity
/// reproduces the paper's "memory limited to a restricted buffer pool"
/// experimental setup.
///
/// Thread-safety: all pin/unpin/flush/evict bookkeeping is serialized by a
/// single pool mutex (held across the disk read of a miss, so concurrent
/// misses do not overlap their I/O — the parallel execution layer targets
/// CPU-bound workloads whose pages are pool hits). Page *contents* are
/// accessed through PageGuard without the mutex: a pinned frame is never
/// evicted or re-assigned, and the frame buffers are allocated once in the
/// constructor, so `data()` pointers stay stable. Concurrent readers of one
/// page are safe; writers of one page must be externally serialized.
///
/// Read-ahead: `Prefetch` enqueues a hint serviced by one background
/// prefetcher thread. Prefetched frames enter the pool unpinned (evictable)
/// and are counted as *prefetch* reads; the demand read is charged when a
/// Pin consumes the frame, so `IoStats::page_reads` stays exactly the
/// demand I/O the serial pipeline would issue (what the cost model pins).
/// The prefetcher never evicts a demand-loaded frame: it only fills free
/// frames or replaces still-unconsumed prefetched frames.
///
/// Hints are additionally *gated* so read-ahead backs off when it cannot
/// help: a hint is dropped when the pool's prefetch headroom (free frames
/// plus still-unconsumed prefetched frames) falls below a small threshold,
/// or when the rolling hit rate of recently decided prefetches (consumed
/// vs. evicted unused) drops under ~25% — the measured break-even for a
/// wasted read-ahead's disk traffic and mutex hold. Dropped hints decay
/// the rolling
/// window, so a changed access pattern re-opens the gate with a fresh
/// probe. Gating only suppresses *physical* read-ahead traffic; demand
/// reads (`IoStats::page_reads`) are unaffected.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins an existing page, reading it from disk on a miss.
  Result<PageGuard> Pin(FileId file, PageId page);

  /// Pins a brand-new page at the end of `file` without a disk read. The
  /// frame starts zeroed and dirty; `page` must equal the file's current
  /// size in pages.
  Result<PageGuard> PinNew(FileId file, PageId page);

  /// Hints that pages [first, first + count) of `file` will be read soon.
  /// Fire-and-forget: requests past EOF, already-cached pages, and requests
  /// raced by `EvictFile` are silently dropped. No-op while read-ahead is
  /// unconfigured (`read_ahead_pages() == 0`).
  void Prefetch(FileId file, PageId first, int64_t count);

  /// Sets the read-ahead distance sequential readers should hint (0
  /// disables prefetching). Starts the background prefetcher on first
  /// enable.
  void ConfigureReadAhead(int pages);
  int read_ahead_pages() const {
    return read_ahead_pages_.load(std::memory_order_relaxed);
  }

  /// Toggles coalescing of contiguous dirty pages into vectored writes on
  /// FlushFile/FlushAll (eviction write-back is always per-page).
  void set_batched_writeback(bool on) {
    batched_writeback_.store(on, std::memory_order_relaxed);
  }
  bool batched_writeback() const {
    return batched_writeback_.load(std::memory_order_relaxed);
  }

  /// Writes back all dirty pages of `file` (keeps them cached).
  Status FlushFile(FileId file);

  /// Writes back and drops every cached page of `file`, cancelling any
  /// outstanding prefetches for it. Required before accessing the file
  /// through a different channel (e.g. external sort).
  Status EvictFile(FileId file);

  /// Flushes every dirty page in the pool.
  Status FlushAll();

  /// Blocks until every prefetch enqueued so far has been serviced or
  /// dropped. Test-only determinism hook.
  void DrainPrefetches();

  size_t capacity_pages() const { return capacity_; }
  size_t pinned_pages() const;
  /// Race-free snapshot of the pool counters. Drops batched by the
  /// lock-free gate fast path but not yet folded under mu_ are added so
  /// `prefetch_gated` never under-reports.
  PoolStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    PoolStats snapshot = stats_;
    snapshot.prefetch_gated += gate_fast_drops_.load(std::memory_order_relaxed);
    return snapshot;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = PoolStats{};
    gate_fast_drops_.store(0, std::memory_order_relaxed);
  }
  DiskManager* disk() const { return disk_; }

 private:
  friend class PageGuard;

  /// Minimum prefetch headroom (free + unconsumed prefetched frames) for a
  /// hint to be worth enqueueing.
  static constexpr int64_t kPrefetchMinHeadroom = 4;
  /// Decided prefetches (consumed or evicted unused) required before the
  /// hit-rate gate may engage.
  static constexpr int64_t kPrefetchGateMinSample = 32;
  /// Dropped hints between decays of the rolling hit-rate window. Each
  /// decay halves the window; once it shrinks under the sample floor the
  /// gate re-opens for a short probe, so this sets the probe duty cycle —
  /// large enough that a persistently useless pattern pays almost nothing.
  static constexpr int64_t kPrefetchGateDecay = 1024;

  struct Frame {
    FileId file = kInvalidFileId;
    PageId page = -1;
    int32_t pin_count = 0;
    bool dirty = false;
    bool prefetched = false;  // loaded by read-ahead, not yet consumed
    std::list<int32_t>::iterator lru_pos;  // valid iff in_lru
    bool in_lru = false;
    std::unique_ptr<std::byte[]> data;
  };

  struct Key {
    FileId file;
    PageId page;
    bool operator==(const Key& o) const {
      return file == o.file && page == o.page;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<int64_t>()((static_cast<int64_t>(k.file) << 48) ^
                                  k.page);
    }
  };

  struct PrefetchRequest {
    FileId file = kInvalidFileId;
    PageId first = 0;
    int64_t count = 0;
    uint64_t epoch = 0;  // file epoch at enqueue; stale requests are dropped
  };

  // All private helpers below require mu_ to be held by the caller.
  Result<int32_t> FindVictim();
  int32_t FindPrefetchVictim();
  Status FlushFrame(Frame& frame);
  Status FlushFramesBatched(std::vector<int32_t>& frame_indices);
  void ReleaseFrame(size_t frame_index);
  uint64_t FileEpoch(FileId file) const;
  void ServicePrefetchLocked(const PrefetchRequest& req,
                             std::vector<std::byte>* staging);
  bool TryServiceQueuedPrefetch(FileId file, PageId page);

  void ServicePrefetch(const PrefetchRequest& req,
                       std::vector<std::byte>* staging);

  void PrefetcherLoop();

  void Unpin(int32_t frame_index);
  void SetDirty(int32_t frame_index) {
    std::lock_guard<std::mutex> lock(mu_);
    frames_[frame_index].dirty = true;
  }
  std::byte* FrameData(int32_t frame_index) {
    // Lock-free: the frame buffer address is fixed at construction and the
    // caller holds a pin, so the frame cannot be re-assigned underneath.
    return frames_[frame_index].data.get();
  }

  /// Mirrors the frames-in-use count into the installed occupancy gauge.
  /// Requires mu_; a null handle (no registry installed) makes this one
  /// pointer check.
  void TouchOccupancyGauge() {
    if (occupancy_gauge_ != nullptr) {
      occupancy_gauge_->Set(
          static_cast<int64_t>(capacity_ - free_frames_.size()));
    }
  }

  DiskManager* disk_;
  size_t capacity_;
  // Observability handles, resolved once at construction; null when no
  // registry is installed.
  Gauge* occupancy_gauge_ = nullptr;
  Counter* hits_counter_ = nullptr;
  Counter* misses_counter_ = nullptr;
  Counter* evictions_counter_ = nullptr;
  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::vector<int32_t> free_frames_;
  std::list<int32_t> lru_;  // front = least recently used, unpinned only
  std::unordered_map<Key, int32_t, KeyHash> page_table_;
  std::unordered_map<FileId, uint64_t> file_epochs_;  // bumped by EvictFile
  PoolStats stats_;
  // Prefetch-gating state (all under mu_): loaded-but-unconsumed read-ahead
  // frames, and the rolling window of decided prefetches.
  int64_t prefetched_unconsumed_ = 0;
  int64_t window_prefetch_hits_ = 0;
  int64_t window_prefetch_wasted_ = 0;
  int64_t gated_since_decay_ = 0;
  /// Published (under mu_) whenever the hit-rate gate's verdict changes, so
  /// Prefetch() can drop hints without touching mu_ while the gate stays
  /// closed — thousands of doomed hints otherwise contend with demand pins
  /// on the hot path. Decay bookkeeping batches via gate_fast_drops_.
  std::atomic<bool> gate_closed_{false};
  std::atomic<int64_t> gate_fast_drops_{0};
  std::atomic<int> read_ahead_pages_{0};
  std::atomic<bool> batched_writeback_{true};

  // Prefetcher state. Lock ordering: mu_ may be held when taking queue_mu_
  // (a Pin miss claiming a queued request), never the reverse — the worker
  // pops under queue_mu_ and releases it before servicing under mu_;
  // enqueuers snapshot the epoch under mu_, release it, then take
  // queue_mu_; EvictFile purges the queue before taking mu_.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drain_cv_;
  std::deque<PrefetchRequest> queue_;
  /// Mirrors queue_.size() (updated under queue_mu_) so the Pin miss path
  /// can skip taking queue_mu_ when no hint could possibly cover the page —
  /// the common case once gating has shut read-ahead down. A stale zero
  /// only delays a claim the worker will service anyway.
  std::atomic<int64_t> queue_depth_{0};
  int64_t in_service_ = 0;  // requests popped but not yet finished
  bool stop_ = false;
  std::thread prefetcher_;
};

}  // namespace iolap

#endif  // IOLAP_STORAGE_BUFFER_POOL_H_
