#ifndef IOLAP_STORAGE_BUFFER_POOL_H_
#define IOLAP_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/io_stats.h"

namespace iolap {

class BufferPool;

/// RAII pin on a buffer-pool page. While alive, the frame cannot be evicted
/// and `data()` stays valid. Call `MarkDirty()` after mutating the page so
/// the pool writes it back on eviction/flush.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, int32_t frame);
  ~PageGuard();

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;

  bool valid() const { return pool_ != nullptr; }
  std::byte* data();
  const std::byte* data() const;
  void MarkDirty();

  /// Drops the pin early (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  int32_t frame_ = -1;
};

/// Fixed-capacity LRU buffer pool over a DiskManager. This is the memory
/// budget `B` in the paper's cost model: every algorithm accesses table
/// pages exclusively through the pool, so restricting the pool's capacity
/// reproduces the paper's "memory limited to a restricted buffer pool"
/// experimental setup.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins an existing page, reading it from disk on a miss.
  Result<PageGuard> Pin(FileId file, PageId page);

  /// Pins a brand-new page at the end of `file` without a disk read. The
  /// frame starts zeroed and dirty; `page` must equal the file's current
  /// size in pages.
  Result<PageGuard> PinNew(FileId file, PageId page);

  /// Writes back all dirty pages of `file` (keeps them cached).
  Status FlushFile(FileId file);

  /// Writes back and drops every cached page of `file`. Required before
  /// accessing the file through a different channel (e.g. external sort).
  Status EvictFile(FileId file);

  /// Flushes every dirty page in the pool.
  Status FlushAll();

  size_t capacity_pages() const { return capacity_; }
  size_t pinned_pages() const;
  const PoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PoolStats{}; }
  DiskManager* disk() const { return disk_; }

 private:
  friend class PageGuard;

  struct Frame {
    FileId file = kInvalidFileId;
    PageId page = -1;
    int32_t pin_count = 0;
    bool dirty = false;
    std::list<int32_t>::iterator lru_pos;  // valid iff in_lru
    bool in_lru = false;
    std::unique_ptr<std::byte[]> data;
  };

  struct Key {
    FileId file;
    PageId page;
    bool operator==(const Key& o) const {
      return file == o.file && page == o.page;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<int64_t>()((static_cast<int64_t>(k.file) << 48) ^
                                  k.page);
    }
  };

  Result<int32_t> FindVictim();
  Status FlushFrame(Frame& frame);
  void Unpin(int32_t frame_index);
  void SetDirty(int32_t frame_index) { frames_[frame_index].dirty = true; }
  std::byte* FrameData(int32_t frame_index) {
    return frames_[frame_index].data.get();
  }

  DiskManager* disk_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::vector<int32_t> free_frames_;
  std::list<int32_t> lru_;  // front = least recently used, unpinned only
  std::unordered_map<Key, int32_t, KeyHash> page_table_;
  PoolStats stats_;
};

}  // namespace iolap

#endif  // IOLAP_STORAGE_BUFFER_POOL_H_
