#ifndef IOLAP_STORAGE_BUFFER_POOL_H_
#define IOLAP_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/access_plan.h"
#include "storage/async_io.h"
#include "storage/disk_manager.h"
#include "storage/io_stats.h"

namespace iolap {

class BufferPool;

/// RAII pin on a buffer-pool page. While alive, the frame cannot be evicted
/// and `data()` stays valid. Call `MarkDirty()` after mutating the page so
/// the pool writes it back on eviction/flush. A guard may be moved across
/// threads but must be used by one thread at a time.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, int32_t frame);
  ~PageGuard();

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;

  bool valid() const { return pool_ != nullptr; }
  std::byte* data();
  const std::byte* data() const;
  void MarkDirty();

  /// Drops the pin early (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  int32_t frame_ = -1;
};

/// Fixed-capacity LRU buffer pool over a DiskManager. This is the memory
/// budget `B` in the paper's cost model: every algorithm accesses table
/// pages exclusively through the pool, so restricting the pool's capacity
/// reproduces the paper's "memory limited to a restricted buffer pool"
/// experimental setup.
///
/// Thread-safety: all pin/unpin/flush/evict bookkeeping is serialized by a
/// single pool mutex (held across the disk read of a miss, so concurrent
/// misses do not overlap their I/O — the parallel execution layer targets
/// CPU-bound workloads whose pages are pool hits). Page *contents* are
/// accessed through PageGuard without the mutex: a pinned frame is never
/// evicted or re-assigned, and the frame buffers are allocated once in the
/// constructor, so `data()` pointers stay stable. Concurrent readers of one
/// page are safe; writers of one page must be externally serialized.
///
/// Read-ahead: `Prefetch` enqueues a hint serviced by one background
/// prefetcher thread. Prefetched frames enter the pool unpinned (evictable)
/// and are counted as *prefetch* reads; the demand read is charged when a
/// Pin consumes the frame, so `IoStats::page_reads` stays exactly the
/// demand I/O the serial pipeline would issue (what the cost model pins).
/// The prefetcher never evicts a demand-loaded frame: it only fills free
/// frames or replaces still-unconsumed prefetched frames.
///
/// Plan-driven read-ahead: when a reader knows its page schedule exactly
/// (the window engine's cell scan and segment windows), it wraps the scan
/// in `BeginPlannedAccess(plan)`. The pool then drives an async backend
/// (io_uring or a pread pool, `ConfigurePlanReadAhead`) a bounded distance
/// ahead of the consumer, overlapping the next pages' reads with the
/// current pages' compute. Completed planned reads are installed only into
/// *free* frames (an "annex" outside the LRU, reclaimed by demand eviction
/// before any LRU victim) or parked in their chunk buffer until demanded —
/// so the demand-page cache contents, the LRU order, and therefore
/// `IoStats::page_reads` evolve exactly as in a serial run. While a plan is
/// active, heuristic hints for the planned files are suppressed.
///
/// Hints are additionally *gated* so read-ahead backs off when it cannot
/// help: a hint is dropped when the pool's prefetch headroom (free frames
/// plus still-unconsumed prefetched frames) falls below a small threshold,
/// or when the rolling hit rate of recently decided prefetches (consumed
/// vs. evicted unused) drops under ~25% — the measured break-even for a
/// wasted read-ahead's disk traffic and mutex hold. Dropped hints decay
/// the rolling
/// window, so a changed access pattern re-opens the gate with a fresh
/// probe. Gating only suppresses *physical* read-ahead traffic; demand
/// reads (`IoStats::page_reads`) are unaffected.
///
/// Destruction contract: the destructor stops the prefetcher, then writes
/// back any remaining dirty frames best-effort (failures are logged to
/// stderr and, in debug builds, assert). Callers that must observe flush
/// errors should call FlushAll() themselves before destroying the pool —
/// a destructor cannot report them.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins an existing page, reading it from disk on a miss.
  Result<PageGuard> Pin(FileId file, PageId page);

  /// Pins a brand-new page at the end of `file` without a disk read. The
  /// frame starts zeroed and dirty; `page` must equal the file's current
  /// size in pages.
  Result<PageGuard> PinNew(FileId file, PageId page);

  /// Hints that pages [first, first + count) of `file` will be read soon.
  /// Fire-and-forget: requests past EOF, already-cached pages, and requests
  /// raced by `EvictFile` are silently dropped. No-op while read-ahead is
  /// unconfigured (`read_ahead_pages() == 0`).
  void Prefetch(FileId file, PageId first, int64_t count);

  /// Sets the read-ahead distance sequential readers should hint (0
  /// disables prefetching). Starts the background prefetcher on first
  /// enable.
  void ConfigureReadAhead(int pages);

  /// RAII handle for one active access plan; ends the plan (draining
  /// in-flight reads) on destruction. Inert when default-constructed or
  /// when the pool declined the plan.
  class PlannedAccess {
   public:
    PlannedAccess() = default;
    ~PlannedAccess();
    PlannedAccess(const PlannedAccess&) = delete;
    PlannedAccess& operator=(const PlannedAccess&) = delete;
    PlannedAccess(PlannedAccess&& other) noexcept : pool_(other.pool_) {
      other.pool_ = nullptr;
    }
    PlannedAccess& operator=(PlannedAccess&& other) noexcept;
    bool active() const { return pool_ != nullptr; }

   private:
    friend class BufferPool;
    explicit PlannedAccess(BufferPool* pool) : pool_(pool) {}
    BufferPool* pool_ = nullptr;
  };

  /// Selects the async backend plan-driven read-ahead runs on and the
  /// bound on concurrently in-flight read chunks. `backend` is resolved
  /// through `ResolveAsyncBackend` (env override, auto-probing); kOff
  /// makes every BeginPlannedAccess inert. Chunk size follows
  /// `read_ahead_pages()`. Call before the first plan; the backend thread
  /// starts lazily at the first accepted plan.
  void ConfigurePlanReadAhead(AsyncBackendKind backend, int in_flight_chunks);

  /// Starts driving `plan` (see the class comment). At most one plan may
  /// be active; a second Begin, an empty plan, or an off/unavailable
  /// backend returns an inert guard and the reader proceeds on demand
  /// reads alone. Streams are clamped to the current file sizes.
  PlannedAccess BeginPlannedAccess(const AccessPlan& plan);
  int read_ahead_pages() const {
    return read_ahead_pages_.load(std::memory_order_relaxed);
  }

  /// Toggles coalescing of contiguous dirty pages into vectored writes on
  /// FlushFile/FlushAll (eviction write-back is always per-page).
  void set_batched_writeback(bool on) {
    batched_writeback_.store(on, std::memory_order_relaxed);
  }
  bool batched_writeback() const {
    return batched_writeback_.load(std::memory_order_relaxed);
  }

  /// Writes back all dirty pages of `file` (keeps them cached).
  Status FlushFile(FileId file);

  /// Writes back and drops every cached page of `file`, cancelling any
  /// outstanding prefetches for it. Required before accessing the file
  /// through a different channel (e.g. external sort).
  Status EvictFile(FileId file);

  /// Flushes every dirty page in the pool.
  Status FlushAll();

  /// Blocks until every prefetch enqueued so far has been serviced or
  /// dropped. Test-only determinism hook.
  void DrainPrefetches();

  /// Test-only determinism hook: freezes/unfreezes the background
  /// prefetcher so tests can stage queue contents without racing the
  /// worker. Queued hints stay queued while paused; Pin's inline claim
  /// path (`TryServiceQueuedPrefetch`) still runs. Callers must unpause
  /// (or purge via `ConfigureReadAhead(0)`) before `DrainPrefetches`.
  void SetPrefetcherPausedForTest(bool paused);

  /// True when plan-driven read-ahead is driven synchronously from the pin
  /// path instead of an async backend (see plan_sync_).
  bool plan_sync_mode() const {
    std::lock_guard<std::mutex> lock(mu_);
    return plan_sync_;
  }

  /// Test hook: forces synchronous plan mode (see plan_sync_) regardless of
  /// host parallelism, so the inline chunk-serve path is exercisable on
  /// multi-core machines. Call between ConfigurePlanReadAhead (which
  /// recomputes the mode) and BeginPlannedAccess.
  void SetPlanSyncForTest(bool sync) {
    std::lock_guard<std::mutex> lock(mu_);
    plan_sync_ = sync;
  }

  size_t capacity_pages() const { return capacity_; }
  size_t pinned_pages() const;
  /// Race-free snapshot of the pool counters. Drops batched by the
  /// lock-free gate fast path but not yet folded under mu_ are added so
  /// `prefetch_gated` never under-reports.
  PoolStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    PoolStats snapshot = stats_;
    snapshot.prefetch_gated += gate_fast_drops_.load(std::memory_order_relaxed);
    return snapshot;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = PoolStats{};
    gate_fast_drops_.store(0, std::memory_order_relaxed);
  }
  DiskManager* disk() const { return disk_; }

 private:
  friend class PageGuard;

  /// Minimum prefetch headroom (free + unconsumed prefetched frames) for a
  /// hint to be worth enqueueing.
  static constexpr int64_t kPrefetchMinHeadroom = 4;
  /// Decided prefetches (consumed or evicted unused) required before the
  /// hit-rate gate may engage.
  static constexpr int64_t kPrefetchGateMinSample = 32;
  /// Dropped hints between decays of the rolling hit-rate window. Each
  /// decay halves the window; once it shrinks under the sample floor the
  /// gate re-opens for a short probe, so this sets the probe duty cycle —
  /// large enough that a persistently useless pattern pays almost nothing.
  static constexpr int64_t kPrefetchGateDecay = 1024;

  struct Frame {
    FileId file = kInvalidFileId;
    PageId page = -1;
    int32_t pin_count = 0;
    bool dirty = false;
    bool prefetched = false;  // loaded by read-ahead, not yet consumed
    // In plan_annex_ rather than lru_ (lru_pos then indexes the annex):
    // planned frames occupy only frames a serial run would have free, so
    // demand replacement is untouched (see FindVictim).
    bool planned = false;
    std::list<int32_t>::iterator lru_pos;  // valid iff in_lru or planned
    bool in_lru = false;
    std::unique_ptr<std::byte[]> data;
  };

  struct Key {
    FileId file;
    PageId page;
    bool operator==(const Key& o) const {
      return file == o.file && page == o.page;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<int64_t>()((static_cast<int64_t>(k.file) << 48) ^
                                  k.page);
    }
  };

  struct PrefetchRequest {
    FileId file = kInvalidFileId;
    PageId first = 0;
    int64_t count = 0;
    uint64_t epoch = 0;  // file epoch at enqueue; stale requests are dropped
  };

  /// One in-flight or partially consumed chunk of planned read-ahead. The
  /// buffer outlives the async read; pages that complete with no free
  /// frame stay in it ("pending") until a demand Pin copies them out.
  struct PlanChunk {
    FileId file = kInvalidFileId;
    PageId first = 0;
    int64_t count = 0;
    uint64_t epoch = 0;  // file epoch at submission
    /// Async chunks read into one contiguous buffer (`data`, a single
    /// backend request); synchronous chunks scatter-read into per-page
    /// buffers (`page_bufs`) so a parked page is served by swapping its
    /// buffer into the frame — no second copy. Exactly one is populated.
    std::unique_ptr<std::byte[]> data;
    std::vector<std::unique_ptr<std::byte[]>> page_bufs;
    int64_t pending = 0;   // pages parked in the buffer awaiting a Pin
    bool resolved = false;  // completion processed
  };
  /// Cursor over one PlanStream. next_submit only grows; pages behind
  /// consume_pos are done and never resubmitted.
  struct PlanStreamState {
    FileId file = kInvalidFileId;
    PageId begin = 0;
    PageId next_submit = 0;
    PageId end = 0;
    PageId consume_pos = 0;
  };

  // All private helpers below require mu_ to be held by the caller.
  Result<int32_t> FindVictim();
  int32_t FindPrefetchVictim();
  /// Submits read chunks round-robin across plan streams until the
  /// in-flight bound is met or nothing is submittable.
  void PumpPlanLocked();
  /// Serves a demand miss on a planned-but-unread page by reading the
  /// whole upcoming chunk with one batched prefetch-class transfer on the
  /// caller's thread, parking the tail pages for later pins. Returns the
  /// pinned frame index, or -1 when the page is outside every stream or
  /// the read/victim path fails (the caller falls back to a plain demand
  /// read). This is the plan driver in synchronous mode (plan_sync_) and
  /// the rescue path when the demand stream outruns the async frontier.
  int32_t TryServePlannedChunkLocked(FileId file, PageId page);
  /// Advances the plan consumption cursor past `page` and re-pumps.
  void PlanNotifyPinLocked(FileId file, PageId page);
  /// Completion handler for the async backend (locks mu_ itself).
  void PlanReadComplete(uint64_t tag, bool ok);
  /// Tears down the active plan: drains in-flight reads, drops pending
  /// pages as wasted, keeps installed annex frames cached.
  void EndPlannedAccess();
  /// Drops plan state referring to `file` (EvictFile): kills its streams
  /// and discards its pending pages. In-flight chunks die at their epoch
  /// check on completion.
  void DropPlanStateForFileLocked(FileId file);
  /// Releases `chunk`'s buffer once it is resolved and no page is parked.
  void MaybeFreeChunkLocked(uint64_t tag);
  Status FlushFrame(Frame& frame);
  Status FlushFramesBatched(std::vector<int32_t>& frame_indices);
  void ReleaseFrame(size_t frame_index);
  uint64_t FileEpoch(FileId file) const;
  void ServicePrefetchLocked(const PrefetchRequest& req,
                             std::vector<std::byte>* staging);
  bool TryServiceQueuedPrefetch(FileId file, PageId page);

  void ServicePrefetch(const PrefetchRequest& req,
                       std::vector<std::byte>* staging);

  void PrefetcherLoop();

  void Unpin(int32_t frame_index);
  void SetDirty(int32_t frame_index) {
    std::lock_guard<std::mutex> lock(mu_);
    frames_[frame_index].dirty = true;
  }
  std::byte* FrameData(int32_t frame_index) {
    // Lock-free: the caller holds a pin, so the frame cannot be
    // re-assigned underneath it. The buffer address is stable while
    // pinned — it only changes when an unpinned frame adopts a
    // synchronous plan chunk's page buffer, under mu_ (see Pin's
    // pending-serve path).
    return frames_[frame_index].data.get();
  }

  /// Mirrors the frames-in-use count into the installed occupancy gauge.
  /// Requires mu_; a null handle (no registry installed) makes this one
  /// pointer check.
  void TouchOccupancyGauge() {
    if (occupancy_gauge_ != nullptr) {
      occupancy_gauge_->Set(
          static_cast<int64_t>(capacity_ - free_frames_.size()));
    }
  }

  DiskManager* disk_;
  size_t capacity_;
  // Observability handles, resolved once at construction; null when no
  // registry is installed.
  Gauge* occupancy_gauge_ = nullptr;
  Counter* hits_counter_ = nullptr;
  Counter* misses_counter_ = nullptr;
  Counter* evictions_counter_ = nullptr;
  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::vector<int32_t> free_frames_;
  std::list<int32_t> lru_;  // front = least recently used, unpinned only
  std::unordered_map<Key, int32_t, KeyHash> page_table_;
  std::unordered_map<FileId, uint64_t> file_epochs_;  // bumped by EvictFile
  PoolStats stats_;
  // ---- Plan-driven read-ahead state (all under mu_; the backend's
  // completion thread re-acquires mu_ through PlanReadComplete). mu_ may
  // be held while calling into the backend's Submit, never the reverse.
  std::unique_ptr<AsyncReader> async_reader_;
  AsyncBackendKind plan_backend_ = AsyncBackendKind::kOff;  // resolved
  /// Drive plans synchronously from the pin path instead of spawning an
  /// async backend. Chosen by ConfigurePlanReadAhead for kAuto on hosts
  /// with a single hardware thread: there a backend thread cannot overlap
  /// anything and every handoff is a context switch, while the batched
  /// chunk read alone (one pread per chunk vs. one per page) already beats
  /// the serial pipeline. An explicit backend request or IOLAP_IO_BACKEND
  /// override forces the async path regardless.
  bool plan_sync_ = false;
  int plan_in_flight_ = 4;     // max chunks submitted but not completed
  bool plan_active_ = false;   // accepting pumps/notifies for a plan
  std::vector<PlanStreamState> plan_streams_;
  size_t plan_next_stream_ = 0;  // round-robin pump position
  int64_t plan_outstanding_ = 0;
  uint64_t plan_next_tag_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<PlanChunk>> plan_chunks_;
  struct PendingPage {
    uint64_t chunk_tag = 0;
    int64_t offset = 0;  // page index within the chunk
  };
  std::unordered_map<Key, PendingPage, KeyHash> plan_pending_;
  std::unordered_set<Key, KeyHash> plan_inflight_pages_;
  std::unordered_set<FileId> plan_files_;
  std::list<int32_t> plan_annex_;  // planned frames, outside the LRU
  /// Signalled whenever an in-flight chunk resolves (installed, parked, or
  /// dropped): demand Pins overtaking the plan wait here, EndPlannedAccess
  /// drains here. Waits use mu_.
  std::condition_variable plan_cv_;
  // Prefetch-gating state (all under mu_): loaded-but-unconsumed read-ahead
  // frames, and the rolling window of decided prefetches.
  int64_t prefetched_unconsumed_ = 0;
  int64_t window_prefetch_hits_ = 0;
  int64_t window_prefetch_wasted_ = 0;
  int64_t gated_since_decay_ = 0;
  /// Published (under mu_) whenever the hit-rate gate's verdict changes, so
  /// Prefetch() can drop hints without touching mu_ while the gate stays
  /// closed — thousands of doomed hints otherwise contend with demand pins
  /// on the hot path. Decay bookkeeping batches via gate_fast_drops_.
  std::atomic<bool> gate_closed_{false};
  std::atomic<int64_t> gate_fast_drops_{0};
  std::atomic<int> read_ahead_pages_{0};
  std::atomic<bool> batched_writeback_{true};

  // Prefetcher state. Lock ordering: mu_ may be held when taking queue_mu_
  // (a Pin miss claiming a queued request), never the reverse — the worker
  // pops under queue_mu_ and releases it before servicing under mu_;
  // enqueuers snapshot the epoch under mu_, release it, then take
  // queue_mu_; EvictFile purges the queue before taking mu_.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drain_cv_;
  std::deque<PrefetchRequest> queue_;
  /// Mirrors queue_.size() (updated under queue_mu_) so the Pin miss path
  /// can skip taking queue_mu_ when no hint could possibly cover the page —
  /// the common case once gating has shut read-ahead down. A stale zero
  /// only delays a claim the worker will service anyway.
  std::atomic<int64_t> queue_depth_{0};
  int64_t in_service_ = 0;  // requests popped but not yet finished
  bool paused_ = false;     // test hook: worker sleeps while set
  bool stop_ = false;
  std::thread prefetcher_;
};

}  // namespace iolap

#endif  // IOLAP_STORAGE_BUFFER_POOL_H_
