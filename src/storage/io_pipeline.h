#ifndef IOLAP_STORAGE_IO_PIPELINE_H_
#define IOLAP_STORAGE_IO_PIPELINE_H_

#include <algorithm>
#include <thread>

#include "storage/async_io.h"

namespace iolap {

/// Tuning knobs for the storage I/O pipeline. Every knob affects only
/// *when* and *in how large transfers* bytes move, never their values or
/// the demand-I/O counts the cost model pins — the EDB produced by an
/// allocation run is byte-identical for every setting, and equivalence
/// tests compare the pipeline fully on vs. fully off (`Serial()`).
struct IoPipelineOptions {
  /// Worker threads for external-sort run generation. Chunk boundaries are
  /// fixed by input offset, so any value sorts the same runs to the same
  /// scratch pages; 1 generates runs inline, 0 picks the hardware
  /// concurrency (capped at 8).
  int sort_threads = 0;

  /// Pages of merge input buffered per run in the k-way merge. 0 splits
  /// the sort budget across the merge group (block transfers, same page
  /// count); 1 reproduces the classic page-at-a-time merge I/O pattern.
  int merge_block_pages = 0;

  /// Read-ahead distance (pages) hinted by sequential readers; the buffer
  /// pool's background prefetcher services the hints. 0 disables prefetch.
  int read_ahead_pages = 8;

  /// Coalesce contiguous dirty pages into single vectored writes on
  /// FlushFile/FlushAll (eviction write-back stays per-page).
  bool batched_writeback = true;

  /// Async backend for plan-driven read-ahead: readers with an exact page
  /// schedule (the window engine's passes) emit an AccessPlan the buffer
  /// pool drives asynchronously, overlapping the next window's reads with
  /// the current window's compute. kAuto probes for io_uring and falls
  /// back to a pread thread pool; kOff leaves only the heuristic hints.
  AsyncBackendKind io_backend = AsyncBackendKind::kAuto;

  /// Bound on concurrently in-flight planned read chunks (each chunk is
  /// `read_ahead_pages` pages), so small pools never sacrifice demand
  /// frames to read-ahead staging.
  int plan_in_flight = 4;

  int EffectiveSortThreads() const {
    if (sort_threads > 0) return sort_threads;
    unsigned hw = std::thread::hardware_concurrency();
    return static_cast<int>(std::clamp(hw, 1u, 8u));
  }

  /// The fully serial pipeline: the pre-overhaul I/O pattern, used as the
  /// baseline for equivalence tests and the pipeline benchmarks.
  static IoPipelineOptions Serial() {
    IoPipelineOptions o;
    o.sort_threads = 1;
    o.merge_block_pages = 1;
    o.read_ahead_pages = 0;
    o.batched_writeback = false;
    o.io_backend = AsyncBackendKind::kOff;
    return o;
  }
};

}  // namespace iolap

#endif  // IOLAP_STORAGE_IO_PIPELINE_H_
