#ifndef IOLAP_STORAGE_ASYNC_IO_H_
#define IOLAP_STORAGE_ASYNC_IO_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/status.h"
#include "storage/disk_manager.h"

namespace iolap {

/// Which async read backend drives plan-driven read-ahead.
enum class AsyncBackendKind {
  kOff,    // no plan-driven read-ahead (heuristic hints only)
  kAuto,   // io_uring when the kernel supports it, else the pread pool
  kUring,  // raw-syscall io_uring rings (no liburing dependency)
  kPread,  // small thread pool issuing positional reads
};

/// One async read of `count` consecutive pages of `file` starting at
/// `first` into `buffer` (count * kPageSize bytes, caller-owned and stable
/// until the completion fires). `tag` round-trips to the completion.
struct AsyncReadRequest {
  FileId file = kInvalidFileId;
  PageId first = 0;
  int64_t count = 0;
  std::byte* buffer = nullptr;
  uint64_t tag = 0;
};

/// Asynchronous page-read backend. Submit() queues a read and returns;
/// the completion callback fires exactly once per submitted request, from
/// a backend thread, with no backend-internal locks held (the callback may
/// re-enter Submit or take caller locks). `ok == false` means the read did
/// not complete (short read, I/O error, or backend shutdown) and the
/// buffer contents are unspecified; the caller falls back to a demand
/// read. Successful reads are charged to `IoStats::prefetch_reads` and —
/// like all read-ahead — bypass the fault injector; a real fault
/// resurfaces on the demand read. The destructor completes or fails every
/// in-flight request (each still gets its callback) before returning.
class AsyncReader {
 public:
  using Completion = std::function<void(uint64_t tag, bool ok)>;

  virtual ~AsyncReader() = default;

  /// Queues `req`. A non-OK status means the request was *not* accepted
  /// and no completion will fire for it.
  virtual Status Submit(const AsyncReadRequest& req) = 0;

  /// Stable backend name for logs and bench JSON ("uring" / "pread").
  virtual const char* name() const = 0;
};

/// True when this kernel accepts io_uring_setup (probed once and cached).
/// Always false under ThreadSanitizer: TSan cannot see the kernel's writes
/// into the shared rings and reports false positives.
bool IoUringSupported();

/// Resolves `requested` to a concrete backend: applies the
/// `IOLAP_IO_BACKEND` environment override (`uring` | `pread` | `off`,
/// used by CI to force the fallback), then maps kAuto to kUring or kPread
/// by probing, and downgrades an explicit kUring to kPread when the kernel
/// lacks support. Never returns kAuto.
AsyncBackendKind ResolveAsyncBackend(AsyncBackendKind requested);

/// Backend name for display ("off" / "auto" / "uring" / "pread").
const char* AsyncBackendName(AsyncBackendKind kind);

/// Parses a `--io-backend` flag value; returns false on unknown names.
bool ParseAsyncBackend(const std::string& text, AsyncBackendKind* out);

/// Creates the backend for `kind` (must be kUring or kPread — resolve
/// first). Returns null if the backend cannot start (e.g. ring setup
/// failed after a positive probe); callers should then retry with kPread
/// or run without a plan.
std::unique_ptr<AsyncReader> CreateAsyncReader(AsyncBackendKind kind,
                                               DiskManager* disk,
                                               AsyncReader::Completion done);

}  // namespace iolap

#endif  // IOLAP_STORAGE_ASYNC_IO_H_
