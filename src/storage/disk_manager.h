#ifndef IOLAP_STORAGE_DISK_MANAGER_H_
#define IOLAP_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/io_stats.h"

namespace iolap {

/// Size of one disk page in bytes. Matches the 4 KB page size used in the
/// paper's experiments.
inline constexpr size_t kPageSize = 4096;

using FileId = int32_t;
using PageId = int64_t;

inline constexpr FileId kInvalidFileId = -1;

/// Bounded retry-with-backoff for *transient* page I/O failures
/// (`StatusCode::kUnavailable`). Permanent failures (`kIoError` and every
/// other code) surface immediately regardless of the policy. Disabled by
/// default: `max_retries == 0` reproduces the fail-fast behaviour every
/// existing cost-model and fault-injection test pins.
struct RetryPolicy {
  int max_retries = 0;              // extra attempts after the first failure
  int64_t backoff_initial_us = 100;  // sleep before the first retry
  double backoff_multiplier = 2.0;   // exponential growth per retry
  int64_t backoff_max_us = 100'000;  // backoff ceiling

  bool enabled() const { return max_retries > 0; }
};

/// Owns a workspace directory of page-addressed temporary files and counts
/// every page read/write. All persistent state in the library (fact tables,
/// summary tables, sort runs, the extended database) lives in files managed
/// here, so `stats()` captures the total disk traffic of an operation.
///
/// Thread-safety: page reads/writes on *distinct* pages may run
/// concurrently (positional pread/pwrite on a shared fd; the file table is
/// guarded by a reader/writer lock and the I/O counters are atomic).
/// Concurrent writes to the *same* page, and racing appends to the same
/// file, are the caller's responsibility to serialize — the parallel
/// execution layer only ever writes from one thread per file (parallel sort
/// workers write disjoint preallocated page ranges).
/// `SetFaultInjector` must be called before any concurrent use; injector
/// invocations themselves are serialized by an internal mutex so stateful
/// test injectors (countdowns) stay well-defined under concurrency.
class DiskManager {
 public:
  /// Creates (if needed) and takes over `directory`. Files created by this
  /// manager are removed in the destructor.
  explicit DiskManager(std::string directory);
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Creates a new empty file. `hint` is embedded in the on-disk name for
  /// debuggability only.
  Result<FileId> CreateFile(const std::string& hint);

  /// Reads page `page` of `file` into `buffer` (kPageSize bytes). Reading a
  /// page at or beyond the current size is an error.
  Status ReadPage(FileId file, PageId page, void* buffer);

  /// Reads `n` consecutive pages starting at `first` into `buffer`
  /// (n * kPageSize bytes) with one positional read. `prefetch` selects the
  /// I/O class: demand reads count into `IoStats::page_reads` and pass the
  /// fault injector; prefetch reads count into `IoStats::prefetch_reads`
  /// and bypass the injector (a failed read-ahead is dropped by the caller
  /// and the fault, if real, resurfaces on the demand read).
  Status ReadPages(FileId file, PageId first, int64_t n, void* buffer,
                   bool prefetch = false);

  /// Vectored variant of ReadPages: scatters `n` consecutive pages starting
  /// at `first` into `n` separate kPageSize buffers with one preadv. Same
  /// counting and prefetch semantics as ReadPages.
  Status ReadPagesScatter(FileId file, PageId first, std::byte* const* pages,
                          int64_t n, bool prefetch = false);

  /// Writes `buffer` (kPageSize bytes) to page `page`, growing the file if
  /// `page` is the first page past the end. Writing further past the end is
  /// an error (pages are always allocated densely).
  Status WritePage(FileId file, PageId page, const void* buffer);

  /// Writes `n` consecutive pages starting at `first` from a contiguous
  /// buffer with one positional write, growing the file if the range
  /// extends it (`first` must not leave a hole). Counts `n` page writes.
  Status WritePages(FileId file, PageId first, int64_t n, const void* buffer);

  /// Vectored variant of WritePages: the pages live in `n` separate
  /// kPageSize buffers (e.g. buffer-pool frames) and are written with
  /// pwritev. Same growth rule and counting as WritePages.
  Status WritePagesGather(FileId file, PageId first,
                          const std::byte* const* pages, int64_t n);

  /// Extends `file` with zero pages up to `pages` total (no-op if already
  /// that large). Not counted as page I/O: it reserves address space so
  /// concurrent writers can fill disjoint ranges without the dense-growth
  /// append rule serializing them.
  Status Preallocate(FileId file, int64_t pages);

  /// Number of pages currently in `file`.
  Result<int64_t> SizeInPages(FileId file) const;

  /// Shrinks `file` to `pages` pages. `pages` must not exceed current size.
  Status Truncate(FileId file, int64_t pages);

  /// Closes and unlinks `file`.
  Status DeleteFile(FileId file);

  /// Copies the first `pages` pages of `file` into a fresh file at
  /// `dest_path` (outside the workspace; survives this manager's
  /// destructor) with raw positional reads, then fsyncs the copy. The
  /// caller must flush dirty buffer-pool pages first. Checkpoint traffic:
  /// bypasses the IoStats counters entirely — the paper's cost model counts
  /// demand I/O, and enabling checkpoints must not change it — but still
  /// consults the fault injector with op 'c' so recovery tests can kill a
  /// run mid-checkpoint.
  Status ExportPages(FileId file, int64_t pages, const std::string& dest_path);

  /// Inverse of ExportPages: copies `pages` pages from `src_path` into
  /// `file`, which must currently be empty, and records the new size.
  /// Uncounted, injector op 'c', like ExportPages.
  Status ImportPages(FileId file, const std::string& src_path, int64_t pages);

  /// Runs the fault injector for `n` checkpoint ('c') operations on behalf
  /// of the recovery layer, whose manifest and payload writes move bytes
  /// outside the page API (so they could not otherwise be fault-tested).
  Status InjectCheckpointOps(int64_t n) {
    return Inject('c', kInvalidFileId, 0, n);
  }

  /// Installs the transient-failure retry policy. Like SetFaultInjector,
  /// must be called before the manager is shared across threads.
  void SetRetryPolicy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Charges one demand page read without touching disk. The buffer pool
  /// calls this when a pin consumes a read-ahead frame, so `page_reads`
  /// counts exactly the demand I/Os the serial pipeline would have issued
  /// (see IoStats).
  void ChargeDemandRead() {
    page_reads_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Charges `n` physical prefetch reads issued outside the page API. The
  /// io_uring backend reads through the raw fd and reports its successful
  /// transfers here so the demand-vs-prefetch IoStats split holds.
  void ChargePrefetchReads(int64_t n) {
    prefetch_reads_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Raw file descriptor of `file` for backends that issue their own
  /// positional reads (io_uring). Valid until DeleteFile or this manager's
  /// destructor; callers must not close it and must not keep reads in
  /// flight across DeleteFile.
  Result<int> RawFd(FileId file) const;

  /// Race-free snapshot of the I/O counters (the counters themselves are
  /// atomics, so concurrent reads and writes keep incrementing while the
  /// snapshot is taken).
  IoStats stats() const {
    IoStats out;
    out.page_reads = page_reads_.load(std::memory_order_relaxed);
    out.page_writes = page_writes_.load(std::memory_order_relaxed);
    out.prefetch_reads = prefetch_reads_.load(std::memory_order_relaxed);
    return out;
  }
  void ResetStats() {
    page_reads_.store(0, std::memory_order_relaxed);
    page_writes_.store(0, std::memory_order_relaxed);
    prefetch_reads_.store(0, std::memory_order_relaxed);
  }

  const std::string& directory() const { return directory_; }

  /// Test hook: called before every page read ('r') / write ('w'); a
  /// non-OK return is surfaced as that operation's result. Exercises the
  /// error-propagation paths of everything built on top of the disk.
  /// Must be installed before the manager is shared across threads.
  using FaultInjector = std::function<Status(char op, FileId, PageId)>;
  void SetFaultInjector(FaultInjector injector) {
    fault_injector_ = std::move(injector);
  }

 private:
  struct FileState {
    int fd = -1;
    std::atomic<int64_t> size_pages{0};
    std::string path;
  };

  Result<FileState*> GetFile(FileId file) const;
  Status Inject(char op, FileId file, PageId first, int64_t n);
  Status GrowTo(FileState* state, PageId end_page);

  // Single-attempt bodies wrapped by the public retrying entry points.
  Status ReadPagesOnce(FileId file, PageId first, int64_t n, void* buffer,
                       bool prefetch);
  Status ReadPagesScatterOnce(FileId file, PageId first,
                              std::byte* const* pages, int64_t n,
                              bool prefetch);
  Status WritePagesOnce(FileId file, PageId first, int64_t n,
                        const void* buffer);
  Status WritePagesGatherOnce(FileId file, PageId first,
                              const std::byte* const* pages, int64_t n);

  template <typename Fn>
  Status RunWithRetry(Fn&& attempt);

  std::string directory_;
  FileId next_file_id_ = 0;
  // unique_ptr values keep FileState addresses stable across rehashes, so
  // readers can use the state after dropping the shared lock.
  std::unordered_map<FileId, std::unique_ptr<FileState>> files_;
  mutable std::shared_mutex mu_;  // guards files_ / next_file_id_
  std::mutex injector_mu_;        // serializes stateful fault injectors
  std::atomic<int64_t> page_reads_{0};
  std::atomic<int64_t> page_writes_{0};
  std::atomic<int64_t> prefetch_reads_{0};
  FaultInjector fault_injector_;
  RetryPolicy retry_policy_;
};

}  // namespace iolap

#endif  // IOLAP_STORAGE_DISK_MANAGER_H_
