#ifndef IOLAP_STORAGE_IO_STATS_H_
#define IOLAP_STORAGE_IO_STATS_H_

#include <cstdint>
#include <ostream>

namespace iolap {

/// Counters for page-granularity disk traffic. The paper's cost model and
/// all of its theorems are stated in page I/Os, so every experiment reports
/// these alongside wall-clock time.
///
/// Demand vs. prefetch accounting: `page_reads` counts *demand* page reads
/// — pages an algorithm asked for, whether the bytes came straight off disk
/// or out of a read-ahead frame (a pin that consumes a prefetched frame is
/// charged here at consumption time). `prefetch_reads` counts the physical
/// reads the background prefetcher issued. Consumed prefetches therefore
/// appear in both counters — `page_reads` stays exactly what the serial
/// pipeline would have read, which is what Theorems 6/7/10 bound, while
/// physical traffic is `page_reads - <consumed> + prefetch_reads` (the
/// consumed count is `PoolStats::prefetch_hits`).
struct IoStats {
  int64_t page_reads = 0;      // demand reads (theorem-counted)
  int64_t page_writes = 0;
  int64_t prefetch_reads = 0;  // physical read-ahead reads

  /// Demand I/O total — the quantity the paper's cost model predicts.
  int64_t total() const { return page_reads + page_writes; }

  IoStats operator-(const IoStats& other) const {
    return IoStats{page_reads - other.page_reads,
                   page_writes - other.page_writes,
                   prefetch_reads - other.prefetch_reads};
  }
  IoStats& operator+=(const IoStats& other) {
    page_reads += other.page_reads;
    page_writes += other.page_writes;
    prefetch_reads += other.prefetch_reads;
    return *this;
  }
  bool operator==(const IoStats& other) const {
    return page_reads == other.page_reads &&
           page_writes == other.page_writes &&
           prefetch_reads == other.prefetch_reads;
  }
};

inline std::ostream& operator<<(std::ostream& os, const IoStats& s) {
  return os << "{reads=" << s.page_reads << " writes=" << s.page_writes
            << " prefetch=" << s.prefetch_reads << "}";
}

/// Buffer-pool behaviour counters (hits avoid disk traffic entirely).
struct PoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t dirty_writebacks = 0;   // dirty pages written back
  int64_t writeback_batches = 0;  // vectored writes that carried them
  int64_t prefetch_hits = 0;      // pins satisfied by a read-ahead frame
  int64_t prefetch_wasted = 0;    // read-ahead frames evicted unused
  int64_t prefetch_gated = 0;     // hints dropped by the pool's gates

  PoolStats operator-(const PoolStats& other) const {
    return PoolStats{hits - other.hits,
                     misses - other.misses,
                     evictions - other.evictions,
                     dirty_writebacks - other.dirty_writebacks,
                     writeback_batches - other.writeback_batches,
                     prefetch_hits - other.prefetch_hits,
                     prefetch_wasted - other.prefetch_wasted,
                     prefetch_gated - other.prefetch_gated};
  }
};

}  // namespace iolap

#endif  // IOLAP_STORAGE_IO_STATS_H_
