#ifndef IOLAP_STORAGE_IO_STATS_H_
#define IOLAP_STORAGE_IO_STATS_H_

#include <cstdint>
#include <ostream>

namespace iolap {

/// Counters for page-granularity disk traffic. The paper's cost model and
/// all of its theorems are stated in page I/Os, so every experiment reports
/// these alongside wall-clock time.
struct IoStats {
  int64_t page_reads = 0;
  int64_t page_writes = 0;

  int64_t total() const { return page_reads + page_writes; }

  IoStats operator-(const IoStats& other) const {
    return IoStats{page_reads - other.page_reads,
                   page_writes - other.page_writes};
  }
  IoStats& operator+=(const IoStats& other) {
    page_reads += other.page_reads;
    page_writes += other.page_writes;
    return *this;
  }
  bool operator==(const IoStats& other) const {
    return page_reads == other.page_reads && page_writes == other.page_writes;
  }
};

inline std::ostream& operator<<(std::ostream& os, const IoStats& s) {
  return os << "{reads=" << s.page_reads << " writes=" << s.page_writes << "}";
}

/// Buffer-pool behaviour counters (hits avoid disk traffic entirely).
struct PoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t dirty_writebacks = 0;

  PoolStats operator-(const PoolStats& other) const {
    return PoolStats{hits - other.hits, misses - other.misses,
                     evictions - other.evictions,
                     dirty_writebacks - other.dirty_writebacks};
  }
};

}  // namespace iolap

#endif  // IOLAP_STORAGE_IO_STATS_H_
