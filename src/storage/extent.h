#ifndef IOLAP_STORAGE_EXTENT_H_
#define IOLAP_STORAGE_EXTENT_H_

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk_manager.h"

namespace iolap {

// Column-major compressed extent format: the encoding layer.
//
// An extent is a fixed run of rows stored as per-column byte streams, each
// stream padded to whole pages so any column can be read without touching
// the others. This header defines the on-disk PODs (extent footer, extent
// directory, file footer) and the four lightweight column encodings; the
// EDB-specific column layout and the writer/reader live in
// `edb/columnar.h`. The byte-level specification every struct and encoder
// here must match is docs/FORMAT.md ("Columnar EDB extents") — change them
// together.
//
// All multi-byte values are little-endian (the only byte order the library
// targets; the row formats already rely on it via raw struct paging).

/// The four column encodings. Values are part of the on-disk format.
enum class ColumnEncoding : uint16_t {
  /// Raw 8-byte values (doubles or int64 bit patterns), 8 * rows bytes.
  kPlain64 = 0,
  /// Raw 4-byte int32 values, 4 * rows bytes.
  kPlain32 = 1,
  /// Dictionary: u32 dict_size, dict_size ascending distinct int32 values,
  /// then one fixed-width code per row indexing the dictionary. Code width
  /// is 0 bytes (dict_size == 1: the column is constant), 1 (<= 256), 2
  /// (<= 65536) or 4 bytes.
  kDict32 = 2,
  /// int64 deltas: row 0 as a raw 8-byte base, then one LEB128 varint of
  /// zigzag(value[i] - value[i-1]) per later row.
  kDeltaZigZag64 = 3,
};

/// "IOLAPXT1" / "IOLAPCF1" read as little-endian u64.
inline constexpr uint64_t kExtentMagic = 0x31545850414c4f49ULL;
inline constexpr uint64_t kColumnarFileMagic = 0x31464350414c4f49ULL;
inline constexpr uint32_t kColumnarVersion = 1;

/// Columns one extent footer can describe. The columnar EDB uses
/// 3 + kMaxDims = 9; the slack keeps the footer layout stable if a column
/// is added.
inline constexpr int kMaxExtentColumns = 12;

/// Extent/file flag: holds at least one maintenance tombstone row.
inline constexpr uint32_t kExtentFlagTombstones = 1u << 0;

/// Pages occupied by `bytes` of encoded stream: ceiling division, and an
/// exact page multiple must not gain a stray page (regression-tested in
/// columnar_test.cc).
inline constexpr int64_t PagesForBytes(int64_t bytes) {
  return (bytes + static_cast<int64_t>(kPageSize) - 1) /
         static_cast<int64_t>(kPageSize);
}

/// One column of one extent. `first_page` is relative to the extent's first
/// page; `byte_length` is the exact encoded stream length (the page tail is
/// zero padding); `num_pages == PagesForBytes(byte_length)`.
struct ColumnDesc {
  uint16_t encoding = 0;  // ColumnEncoding
  uint16_t reserved = 0;
  uint32_t dict_size = 0;  // kDict32 only, else 0
  int64_t byte_length = 0;
  int64_t first_page = 0;
  int64_t num_pages = 0;
};
static_assert(std::is_trivially_copyable_v<ColumnDesc>);
static_assert(sizeof(ColumnDesc) == 32);

/// Last page of every extent. Unused trailing `cols` entries are zero.
struct ExtentFooter {
  uint64_t magic = kExtentMagic;
  int64_t row_count = 0;
  int32_t num_cols = 0;
  uint32_t flags = 0;
  ColumnDesc cols[kMaxExtentColumns] = {};
};
static_assert(std::is_trivially_copyable_v<ExtentFooter>);
static_assert(sizeof(ExtentFooter) == 24 + kMaxExtentColumns * 32);
static_assert(sizeof(ExtentFooter) <= kPageSize);

/// One directory entry per extent, packed into the directory pages that
/// precede the file footer. `first_page` is absolute; `num_pages` counts
/// the column pages plus the footer page.
struct ExtentDirEntry {
  int64_t first_page = 0;
  int64_t num_pages = 0;
  int64_t first_row = 0;
  int64_t row_count = 0;
};
static_assert(std::is_trivially_copyable_v<ExtentDirEntry>);
static_assert(sizeof(ExtentDirEntry) == 32);

inline constexpr int64_t kExtentDirEntriesPerPage =
    static_cast<int64_t>(kPageSize / sizeof(ExtentDirEntry));

/// Very last page of a columnar file; a reader starts here.
struct ColumnarFileFooter {
  uint64_t magic = kColumnarFileMagic;
  uint32_t version = kColumnarVersion;
  int32_t num_dims = 0;
  int64_t num_extents = 0;
  int64_t total_rows = 0;
  int64_t directory_first_page = 0;
  int64_t directory_pages = 0;
  int64_t rows_per_extent = 0;  // writer's capacity; only the last is short
  uint32_t flags = 0;
  uint32_t reserved = 0;
};
static_assert(std::is_trivially_copyable_v<ColumnarFileFooter>);
static_assert(sizeof(ColumnarFileFooter) == 64);

// ---------------------------------------------------------------------------
// Zigzag + LEB128 varint primitives (kDeltaZigZag64).

inline uint64_t ZigZagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode64(uint64_t u) {
  return static_cast<int64_t>(u >> 1) ^ -static_cast<int64_t>(u & 1);
}

/// Longest LEB128 encoding of a u64 (10 bytes) — bounds the stream prefix a
/// decoder must fetch for a row range.
inline constexpr int64_t kMaxVarintBytes = 10;

// ---------------------------------------------------------------------------
// Encoders. Each appends the exact byte stream of one column to `out` and
// returns its ColumnDesc with `encoding`, `dict_size` and `byte_length`
// filled; the extent writer assigns `first_page`/`num_pages`.

/// kPlain64 over 8-byte values (`vals` points at n doubles or int64s).
ColumnDesc EncodePlain64(const void* vals, int64_t n,
                         std::vector<std::byte>* out);

/// kPlain32.
ColumnDesc EncodePlain32(const int32_t* vals, int64_t n,
                         std::vector<std::byte>* out);

/// kDict32 when the dictionary stream is strictly smaller than kPlain32,
/// else kPlain32 — the deterministic rule the format spec fixes.
ColumnDesc EncodeInt32Auto(const int32_t* vals, int64_t n,
                           std::vector<std::byte>* out);

/// kDeltaZigZag64.
ColumnDesc EncodeDeltaZigZag64(const int64_t* vals, int64_t n,
                               std::vector<std::byte>* out);

// ---------------------------------------------------------------------------
// Decoders. A decoder never sees whole pages: the caller fetches the byte
// windows WindowsFor() names and hands them over, which is what lets a
// projected scan of rows [r0, r1) pay only for the pages those windows
// cover. All decoders validate their input and return InvalidArgument on a
// malformed stream (truncated varint, out-of-range code, short window).

struct ByteRange {
  int64_t begin = 0;
  int64_t end = 0;  // exclusive
  int64_t size() const { return end - begin; }
  bool empty() const { return end <= begin; }
};

/// The stream windows needed to decode rows [row_begin, row_end):
///  * kPlain64 / kPlain32 — `body` is the fixed-width slice; `head` empty.
///  * kDict32 — `head` is the dictionary header, `body` the code slice.
///  * kDeltaZigZag64 — `head` empty, `body` the prefix [0, bound) with
///    bound = min(byte_length, 8 + kMaxVarintBytes * (row_end - 1)); the
///    decoder stops after producing row_end values.
struct ColumnWindows {
  ByteRange head;
  ByteRange body;
};
ColumnWindows WindowsFor(const ColumnDesc& col, int64_t row_begin,
                         int64_t row_end);

/// Decodes rows [row_begin, row_end) of a kPlain64 column into `out`
/// (8 bytes per row). `body` holds the window WindowsFor() named.
Status DecodePlain64(const ColumnDesc& col, const std::byte* body,
                     int64_t body_len, int64_t row_begin, int64_t row_end,
                     void* out);

/// Decodes rows of a kPlain32 *or* kDict32 column into int32 values.
/// `head`/`body` hold the windows WindowsFor() named (head unused for
/// kPlain32).
Status DecodeInt32(const ColumnDesc& col, const std::byte* head,
                   int64_t head_len, const std::byte* body, int64_t body_len,
                   int64_t row_begin, int64_t row_end, int32_t* out);

/// Decodes rows of a kDeltaZigZag64 column. `body` holds the stream prefix
/// WindowsFor() named; decoding always starts at row 0 internally and
/// emits rows [row_begin, row_end).
Status DecodeDeltaZigZag64(const ColumnDesc& col, const std::byte* body,
                           int64_t body_len, int64_t row_begin,
                           int64_t row_end, int64_t* out);

}  // namespace iolap

#endif  // IOLAP_STORAGE_EXTENT_H_
