#ifndef IOLAP_SERVE_WORKLOAD_H_
#define IOLAP_SERVE_WORKLOAD_H_

#include <string>

#include "common/result.h"
#include "edb/query.h"
#include "model/schema.h"

namespace iolap {

/// The serve-workload trace grammar — one operation per line, `#` starts a
/// comment, blank lines are skipped:
///
///   agg <sum|count|avg|min|max> [Dim=Node]...
///   agg_bounded <func> <epsilon> <delta> [Dim=Node]...
///   rollup <func> <Dim> <level> [Dim=Node]...
///   completions <fact_id>
///   update <fact_id> <measure>
///   insert <fact_id> <measure> [Dim=Node]...
///   delete <fact_id>
///   compact
///
/// Parsing is strict: an unknown op, unknown function, unresolvable
/// Dim=Node, malformed number, missing argument, or trailing junk is an
/// InvalidArgument error naming the offending token — a typo'd trace line
/// must never be silently skipped or reinterpreted.
enum class TraceOpType : int8_t {
  kAgg = 0,
  kAggBounded,
  kRollUp,
  kCompletions,
  kUpdate,
  kInsert,
  kDelete,
  kCompact,
};
inline constexpr int kNumTraceOpTypes = 8;

/// Grammar keyword of `type` ("agg", "agg_bounded", ...).
const char* TraceOpName(TraceOpType type);

/// One parsed trace operation. Which fields are meaningful depends on
/// `type`; the rest keep their defaults.
struct TraceOp {
  TraceOpType type = TraceOpType::kAgg;
  AggregateFunc func = AggregateFunc::kSum;  // agg / agg_bounded / rollup
  /// Constrained region (agg / agg_bounded / rollup) or the inserted
  /// fact's region (insert; unlisted dimensions stay at the root).
  QueryRegion region = QueryRegion::All();
  double epsilon = 0;   // agg_bounded: error budget (must be >= 0)
  double delta = 0.05;  // agg_bounded: failure probability, in (0, 1)
  int dim = -1;         // rollup: grouping dimension
  int level = 0;        // rollup: grouping level
  FactId fact_id = -1;  // completions / update / insert / delete
  double measure = 0;   // update / insert
};

/// Parses one trace line against `schema`. Returns false for blank /
/// comment-only lines (nothing to run), true with `*op` filled for an
/// operation, or an InvalidArgument error for anything malformed.
Result<bool> ParseTraceOp(const StarSchema& schema, const std::string& line,
                          TraceOp* op);

/// Resolves an aggregate-function keyword (sum|count|avg|min|max);
/// InvalidArgument on anything else.
Result<AggregateFunc> ParseAggregateFunc(const std::string& name);

/// Resolves one "Dimension=Node" token against the schema.
Result<std::pair<int, NodeId>> ParseDimNodeToken(const StarSchema& schema,
                                                 const std::string& token);

}  // namespace iolap

#endif  // IOLAP_SERVE_WORKLOAD_H_
