#ifndef IOLAP_SERVE_QUERY_SERVICE_H_
#define IOLAP_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "aggidx/agg_index.h"
#include "common/result.h"
#include "edb/maintenance.h"
#include "edb/query.h"
#include "exec/thread_pool.h"
#include "serve/aggregate_cache.h"
#include "serve/answer.h"
#include "serve/groupby.h"
#include "serve/shard_map.h"
#include "storage/storage_env.h"
#include "synopsis/synopsis.h"

namespace iolap {

class ColumnarEdb;

/// Which on-disk EDB layout query scans read. The row-major file is always
/// the writer / maintenance format; kColumnar adds a compressed
/// column-major mirror of it (edb/columnar.h) that scans prefer whenever
/// it is in sync.
enum class EdbFormat {
  kRow,
  kColumnar,
};

struct ServeOptions {
  /// Worker threads for parallel group-by scans. 1 = scan inline on the
  /// calling thread (no pool).
  int num_threads = 1;
  /// Unit of the group-by engine's fixed chunk grid (snapped up to whole
  /// EDB pages): scans split into grid chunks of this many rows, never
  /// smaller — partitioning a tiny EDB buys nothing and costs task
  /// dispatch. Part of the determinism contract: answers are byte-stable
  /// only across configurations sharing this value.
  int64_t min_partition_rows = 4096;
  /// Aggregate-cache capacity in result slots (a point aggregate costs 1
  /// slot, a rollup one slot per group). 0 disables caching entirely.
  int64_t cache_slots = 4096;
  /// Maintain a disk-resident hierarchical aggregate index (src/aggidx) and
  /// answer cache misses from its node partials instead of scanning the
  /// EDB; in maintained mode the index is kept incrementally consistent
  /// from the same touched_boxes that drive cache invalidation.
  bool agg_index = false;
  /// Shards to partition the EDB into (clamped to [1, kMaxShards] and to
  /// what the component layout allows — see ShardMap). 1 keeps the classic
  /// single snapshot lock. More shards let maintenance on one shard run
  /// concurrently with queries (and maintenance) on others.
  int num_shards = 1;
  /// Rollup group counts strictly above this use the radix-partitioned
  /// group-by variant (see GroupByOptions::radix_min_groups).
  int64_t radix_min_groups = 4096;
  /// kColumnar converts the EDB into a compressed columnar mirror at
  /// startup (and after Compact / RefreshColumnar); aggregate scans then
  /// decode only the columns they project, roughly halving data pages
  /// read. Any mutation drops the mirror and queries transparently fall
  /// back to the row-major file until it is refreshed. Answers are
  /// byte-identical on either path (see GroupByEngine).
  EdbFormat edb_format = EdbFormat::kRow;
  /// Rows per extent of the columnar mirror (ColumnarWriteOptions).
  int64_t columnar_rows_per_extent = 16384;
  /// Maintain an in-memory per-shard moment synopsis (src/synopsis) and let
  /// bounded-mode queries (AnswerSpec::Bounded) be answered from it with a
  /// probabilistic error bound instead of scanning. Exact-mode queries are
  /// unaffected. Kept incrementally consistent from the same change stream
  /// as the aggregate index.
  bool synopsis = false;
};

/// Per-shard generations pinned by one query: shard `first_shard + i` was
/// at `generations[i]` for the whole query. The multi-shard analogue of the
/// global generation out-param.
struct ShardSnapshot {
  int first_shard = 0;
  std::vector<int64_t> generations;
};

/// Concurrent query-serving front end over the Extended Database.
///
/// Answer tiers (each one falls through to the next): the AggregateCache
/// (exact region+function hit, no I/O), then — with `agg_index` on — the
/// hierarchical aggregate index (a few node pages instead of an EDB scan),
/// then — for bounded-mode queries with `synopsis` on — the moment synopsis
/// (an in-memory probabilistic answer, no I/O, accepted when its error
/// bound fits the query's epsilon; see serve/answer.h and DESIGN.md §15),
/// then the parallel group-by scan (serve/groupby.h). The scan stays the
/// oracle: Uncached* never consults the cache, the index or the synopsis.
///
/// The environment variable IOLAP_EDB_FORMAT (values `row` / `columnar`)
/// overrides ServeOptions::edb_format at construction — a deployment-level
/// force switch, mirroring IOLAP_IO_BACKEND.
///
/// Concurrency model (the sharded snapshot contract):
///  * The leaf space is statically partitioned into shards along
///    component-aligned dimension-0 leaf ranges (serve/shard_map.h); each
///    shard has its own shared_mutex, atomic generation, and list of EDB
///    row ranges. A query shared-locks exactly the shards its region
///    intersects, in ascending order, and *pins their generations*; a
///    maintenance batch exclusively locks the shards it can touch (its
///    fact rects plus every alive component they overlap — conservative,
///    computed before applying), also in ascending order. A query
///    therefore observes all of a batch or none of it on every shard it
///    reads, and maintenance on one shard never blocks queries on others.
///  * Each committed batch bumps the global generation and the touched
///    shards' generations, and selectively invalidates cached results
///    whose region intersects the batch's touched component bounding
///    boxes (MaintenanceStats::touched_boxes). A *failed* batch drops only
///    the cache entries that read the batch's shards (the batch cannot
///    have written a byte outside them) and bumps those shards anyway, so
///    no stale entry can ever be served.
///  * Scans run on the group-by engine's fixed chunk grid; results are
///    byte-identical across thread counts AND shard counts (see
///    GroupByEngine), and 1e-9-equal to the serial QueryEngine.
///
/// With num_shards == 1 all of this degenerates to the classic single
/// snapshot lock + global generation.
///
/// Two modes:
///  * maintained — constructed over a MaintenanceManager; mutations route
///    through the service and invalidate selectively.
///  * read-only — constructed over a static EDB file; generations stay 0
///    and mutation calls fail with kFailedPrecondition.
class QueryService {
 public:
  /// Serves `manager`'s EDB; mutations go through the service.
  QueryService(MaintenanceManager* manager, const ServeOptions& options);

  /// Read-only service over a static EDB.
  QueryService(StorageEnv* env, const StarSchema* schema,
               const TypedFile<EdbRecord>* edb, const ServeOptions& options);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;
  ~QueryService();

  /// Allocation-weighted aggregate over `region`, served from the cache
  /// when possible. Outputs the pinned global generation, whether the
  /// answer came from the cache, and the pinned per-shard generations (all
  /// optional).
  Result<AggregateResult> Aggregate(const QueryRegion& region,
                                    AggregateFunc func,
                                    int64_t* generation = nullptr,
                                    bool* cache_hit = nullptr,
                                    ShardSnapshot* shards = nullptr);

  /// Aggregate with an explicit answer contract. Exact specs behave exactly
  /// like the overload above. Bounded specs walk cache -> index -> synopsis
  /// -> scan and accept a synopsis answer whenever its error bound is
  /// <= spec.epsilon (see serve/answer.h); `answer_stats` reports the tier
  /// that answered and the promised bound. A bounded spec with epsilon <= 0
  /// leaves no error budget and takes literally the exact path, so its
  /// answers are memcmp-equal to exact-mode answers.
  Result<AggregateResult> Aggregate(const QueryRegion& region,
                                    AggregateFunc func, const AnswerSpec& spec,
                                    AnswerStats* answer_stats = nullptr,
                                    int64_t* generation = nullptr,
                                    ShardSnapshot* shards = nullptr);

  /// Cached rollup (one aggregate per node of `dim` at `level`, restricted
  /// to `region`), indexed by node ordinal.
  Result<std::vector<AggregateResult>> RollUp(const QueryRegion& region,
                                              int dim, int level,
                                              AggregateFunc func,
                                              int64_t* generation = nullptr,
                                              bool* cache_hit = nullptr,
                                              ShardSnapshot* shards = nullptr);

  /// Provenance: a fact's completions with their allocation weights.
  /// Uncached (point lookups don't amortize), but snapshot-consistent: it
  /// scans the whole EDB, so it locks every shard.
  Result<std::vector<EdbRecord>> CompletionsOf(FactId fact_id,
                                               int64_t* generation = nullptr);

  /// Rescans the EDB, bypassing the cache in both directions (no lookup,
  /// no insert). The verification and cold-scan baseline: a cached answer
  /// must equal this at the same (shard) generations.
  Result<AggregateResult> UncachedAggregate(const QueryRegion& region,
                                            AggregateFunc func,
                                            int64_t* generation = nullptr,
                                            ShardSnapshot* shards = nullptr);
  Result<std::vector<AggregateResult>> UncachedRollUp(
      const QueryRegion& region, int dim, int level, AggregateFunc func,
      int64_t* generation = nullptr, ShardSnapshot* shards = nullptr);

  /// Mutations (maintained mode only). Applied under exclusive locks on
  /// the touched shards; on success their generations are bumped and
  /// intersecting cache entries dropped. On failure the cache drop is
  /// scoped to the touched shards (the batch may have partially applied,
  /// but only inside them) and the generations are bumped anyway, so no
  /// stale entry can ever be served.
  Status ApplyUpdates(const std::vector<FactUpdate>& updates,
                      MaintenanceStats* stats = nullptr);
  Status InsertFacts(const std::vector<FactRecord>& inserts,
                     MaintenanceStats* stats = nullptr);
  Status DeleteFacts(const std::vector<FactRecord>& deletes,
                     MaintenanceStats* stats = nullptr);

  /// Compacts tombstones out of the EDB (maintained mode only). Logical
  /// content is unchanged, so cached results stay valid and the
  /// generation does not move; row positions do change, so every shard is
  /// locked and the per-shard row ranges are rebuilt. In kColumnar mode
  /// the mirror is rebuilt from the compacted EDB.
  Result<int64_t> Compact();

  /// Rebuilds the columnar mirror from the current EDB (kColumnar mode
  /// only; an immediate no-op in kRow mode). Queries keep running on the
  /// row path while the rebuild scans; the swap to the new mirror is
  /// atomic. Call after a run of mutations to restore columnar scans —
  /// mutations drop the mirror rather than maintain it.
  Status RefreshColumnar();

  /// Whether queries are currently scanning the columnar mirror (kColumnar
  /// mode, mirror built and not dropped by a mutation).
  bool columnar_active() const;

  int64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  /// Shard geometry and per-shard generations. Valid once construction
  /// succeeded (the shard map is built eagerly from one EDB scan).
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int64_t shard_generation(int s) const {
    return shards_[s]->gen.load(std::memory_order_acquire);
  }
  const ShardMap& shard_map() const { return shard_map_; }
  /// Null when options.cache_slots == 0.
  AggregateCache* cache() { return cache_.get(); }
  /// Null when options.agg_index is false.
  AggIndex* agg_index() { return agg_index_.get(); }
  /// Null when options.synopsis is false.
  SynopsisStore* synopsis() { return synopsis_.get(); }
  const StarSchema& schema() const { return *schema_; }

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::atomic<int64_t> gen{0};
    /// Sorted, disjoint EDB row ranges owned by this shard (by dimension-0
    /// leaf; tombstones stay with the run they interrupt). Guarded by mu.
    /// Unused in single-shard mode, where the whole EDB is the range.
    std::vector<RowRange> ranges;
    // Cached per-shard metric handles (null when observability is off).
    class Counter* queries = nullptr;
    class Counter* mutations = nullptr;
    class Gauge* gen_gauge = nullptr;
  };

  /// RAII shared locks over a contiguous ascending shard range, plus the
  /// generations pinned under them.
  struct LockedShards {
    std::vector<std::shared_lock<std::shared_mutex>> locks;
    int first = 0;
    int last = 0;
    int64_t global_gen = 0;
  };

  /// Lazily (re)builds shard state; cheap no-op once ready. Every public
  /// entry point calls this first, so no query or mutation can run while
  /// shard ranges are being (re)built.
  Status EnsureShardsReady();
  Status InitShardsLocked();
  void MakeShards(int num_shards);
  void RecordScanStats(const GroupByStats& gstats);
  /// Scans rows [begin, end) and appends shard-runs to the shards' range
  /// lists by dimension-0 leaf. Caller holds exclusive locks on every
  /// shard the scanned rows can map to. `prev_shard` carries the
  /// tombstone-attachment run state across calls.
  Status AppendRangesFromScan(int64_t begin, int64_t end, int* prev_shard);
  /// Re-derives the range lists of `touched` shards after a batch: rescans
  /// their old ranges plus the appended tail [old_rows, size).
  Status RebuildTouchedLocked(const std::vector<int>& touched,
                              int64_t old_rows);
  /// Conservative pre-computation of the shards a batch can write: the
  /// shards of its fact rects plus those of every alive component the
  /// rects overlap. Empty `rects` (or single-shard mode) locks everything.
  std::vector<int> TouchedShards(const std::vector<Rect>& rects) const;

  LockedShards AcquireShared(const Rect& rect, ShardSnapshot* snapshot);
  /// Merged row ranges of the locked shards; caller holds their locks.
  std::vector<RowRange> CollectRanges(const LockedShards& ls) const;

  Status MutateLocked(const std::vector<Rect>& rects, MaintenanceStats* stats,
                      const std::function<Status(MaintenanceStats*)>& apply);

  /// Current mirror, or null (kRow mode, build failed, or dropped by a
  /// mutation). The shared_ptr keeps the mirror's file alive for the
  /// duration of a scan even if a concurrent mutation drops it.
  std::shared_ptr<const ColumnarEdb> ColumnarSnapshot() const;
  /// Swaps the mirror out; its file is evicted and deleted once the last
  /// in-flight scan releases it.
  void DropColumnar();
  /// Converts the current EDB into a fresh mirror and installs it.
  Status BuildColumnar();

  Result<AggregateResult> ScanAggregate(const LockedShards& ls,
                                        const QueryRegion& region,
                                        AggregateFunc func);
  Result<std::vector<AggregateResult>> ScanRollUp(const LockedShards& ls,
                                                  const QueryRegion& region,
                                                  int dim, int level,
                                                  AggregateFunc func);

  /// Dimension-0 shard partition for the synopsis store: the shard map's
  /// begins when sharded, the whole leaf range otherwise.
  std::vector<int32_t> SynopsisBounds() const;

  StorageEnv* env_;
  const StarSchema* schema_;
  const TypedFile<EdbRecord>* edb_;
  MaintenanceManager* manager_;  // null in read-only mode
  ServeOptions options_;
  std::unique_ptr<ThreadPool> pool_;       // null when num_threads <= 1
  std::unique_ptr<AggregateCache> cache_;  // null when cache_slots <= 0
  std::unique_ptr<AggIndex> agg_index_;    // null when !options.agg_index
  std::unique_ptr<SynopsisStore> synopsis_;  // null when !options.synopsis
  /// Fans the maintenance change stream out to agg_index_ and synopsis_
  /// (the MaintenanceManager holds a single listener slot).
  EdbChangeFanout change_fanout_;
  std::unique_ptr<GroupByEngine> groupby_;

  /// Lock order: init_mu_ -> mutation_mu_ -> shard locks (ascending) ->
  /// cache / index internal mutexes. Queries take only shard locks (shared,
  /// ascending) and then cache/index mutexes.
  std::mutex init_mu_;
  std::atomic<bool> shards_ready_{false};
  std::mutex mutation_mu_;  // serializes mutators across shard sets

  ShardMap shard_map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> generation_{0};

  /// Leaf mutex guarding only the mirror pointer (no other lock is ever
  /// taken while held). Readers copy the shared_ptr and scan lock-free.
  mutable std::mutex columnar_mu_;
  std::shared_ptr<const ColumnarEdb> columnar_;

  // Cached global-metrics handles (null when observability is disabled).
  class Counter* queries_counter_;
  class Counter* mutations_counter_;
  class Counter* partitions_counter_;
  class Counter* index_answers_counter_;
  class Counter* index_fallbacks_counter_;
  /// serve.answer_tier.{cache,index,synopsis,scan}, indexed by AnswerTier.
  class Counter* tier_counters_[4] = {};
  class Gauge* generation_gauge_;
  class Gauge* shards_gauge_;
  class Histogram* query_us_histogram_;
  class Histogram* scan_rows_histogram_;
  class Histogram* partitions_histogram_;
};

}  // namespace iolap

#endif  // IOLAP_SERVE_QUERY_SERVICE_H_
