#ifndef IOLAP_SERVE_QUERY_SERVICE_H_
#define IOLAP_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "aggidx/agg_index.h"
#include "common/result.h"
#include "edb/maintenance.h"
#include "edb/query.h"
#include "exec/thread_pool.h"
#include "serve/aggregate_cache.h"
#include "storage/storage_env.h"

namespace iolap {

struct ServeOptions {
  /// Worker threads for partitioned scans. 1 = scan inline on the calling
  /// thread (no pool).
  int num_threads = 1;
  /// A scan is split into at most num_threads partitions, but never into
  /// partitions smaller than this many EDB rows — partitioning a tiny EDB
  /// buys nothing and costs task dispatch.
  int64_t min_partition_rows = 4096;
  /// Aggregate-cache capacity in result slots (a point aggregate costs 1
  /// slot, a rollup one slot per group). 0 disables caching entirely.
  int64_t cache_slots = 4096;
  /// Maintain a disk-resident hierarchical aggregate index (src/aggidx) and
  /// answer cache misses from its node partials instead of scanning the
  /// EDB; in maintained mode the index is kept incrementally consistent
  /// from the same touched_boxes that drive cache invalidation.
  bool agg_index = false;
};

/// Concurrent query-serving front end over the Extended Database.
///
/// Answer tiers (each one falls through to the next): the AggregateCache
/// (exact region+function hit, no I/O), then — with `agg_index` on — the
/// hierarchical aggregate index (a few node pages instead of an EDB scan),
/// then the partitioned EDB scan. The scan stays the oracle: Uncached*
/// never consults the cache or the index.
///
/// Concurrency model (the generation/snapshot contract):
///  * Every query runs under a shared lock and *pins the generation it
///    started on*: maintenance commits take the lock exclusively, so a
///    query observes either all of a maintenance batch or none of it —
///    never a half-applied rewrite.
///  * Each committed batch bumps the generation and selectively
///    invalidates cached results whose region intersects the batch's
///    touched component bounding boxes (MaintenanceStats::touched_boxes).
///    Any cache entry still present is therefore valid for the current
///    generation, and a hit can be returned without touching the EDB.
///  * Scans partition the EDB into page-aligned ranges executed on an
///    internal ThreadPool and merged in partition order, so a result is
///    deterministic for a fixed partition count.
///
/// Two modes:
///  * maintained — constructed over a MaintenanceManager; mutations route
///    through the service and invalidate selectively.
///  * read-only — constructed over a static EDB file; the generation stays
///    0 and mutation calls fail with kFailedPrecondition.
class QueryService {
 public:
  /// Serves `manager`'s EDB; mutations go through the service.
  QueryService(MaintenanceManager* manager, const ServeOptions& options);

  /// Read-only service over a static EDB.
  QueryService(StorageEnv* env, const StarSchema* schema,
               const TypedFile<EdbRecord>* edb, const ServeOptions& options);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;
  ~QueryService();

  /// Allocation-weighted aggregate over `region`, served from the cache
  /// when possible. Outputs the pinned generation and whether the answer
  /// came from the cache (both optional).
  Result<AggregateResult> Aggregate(const QueryRegion& region,
                                    AggregateFunc func,
                                    int64_t* generation = nullptr,
                                    bool* cache_hit = nullptr);

  /// Cached rollup (one aggregate per node of `dim` at `level`, restricted
  /// to `region`), indexed by node ordinal.
  Result<std::vector<AggregateResult>> RollUp(const QueryRegion& region,
                                              int dim, int level,
                                              AggregateFunc func,
                                              int64_t* generation = nullptr,
                                              bool* cache_hit = nullptr);

  /// Provenance: a fact's completions with their allocation weights.
  /// Uncached (point lookups don't amortize), but snapshot-consistent.
  Result<std::vector<EdbRecord>> CompletionsOf(FactId fact_id,
                                               int64_t* generation = nullptr);

  /// Rescans the EDB, bypassing the cache in both directions (no lookup,
  /// no insert). The verification and cold-scan baseline: a cached answer
  /// must equal this at the same generation.
  Result<AggregateResult> UncachedAggregate(const QueryRegion& region,
                                            AggregateFunc func,
                                            int64_t* generation = nullptr);
  Result<std::vector<AggregateResult>> UncachedRollUp(
      const QueryRegion& region, int dim, int level, AggregateFunc func,
      int64_t* generation = nullptr);

  /// Mutations (maintained mode only). Applied under the exclusive lock;
  /// on success the generation is bumped and intersecting cache entries
  /// dropped. On failure the cache is cleared wholesale (the batch may
  /// have partially applied) and the generation is bumped anyway, so no
  /// stale entry can ever be served.
  Status ApplyUpdates(const std::vector<FactUpdate>& updates,
                      MaintenanceStats* stats = nullptr);
  Status InsertFacts(const std::vector<FactRecord>& inserts,
                     MaintenanceStats* stats = nullptr);
  Status DeleteFacts(const std::vector<FactRecord>& deletes,
                     MaintenanceStats* stats = nullptr);

  /// Compacts tombstones out of the EDB (maintained mode only). Logical
  /// content is unchanged, so cached results stay valid and the
  /// generation does not move.
  Result<int64_t> Compact();

  int64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  /// Null when options.cache_slots == 0.
  AggregateCache* cache() { return cache_.get(); }
  /// Null when options.agg_index is false.
  AggIndex* agg_index() { return agg_index_.get(); }
  const StarSchema& schema() const { return *schema_; }

 private:
  Status MutateLocked(MaintenanceStats* stats,
                      const std::function<Status(MaintenanceStats*)>& apply);

  /// Partitioned scans; caller must hold the shared lock.
  Result<AggregateResult> ScanAggregate(const QueryRegion& region,
                                        AggregateFunc func);
  Result<std::vector<AggregateResult>> ScanRollUp(const QueryRegion& region,
                                                  int dim, int level,
                                                  AggregateFunc func);
  int PartitionCount(int64_t rows) const;

  StorageEnv* env_;
  const StarSchema* schema_;
  const TypedFile<EdbRecord>* edb_;
  MaintenanceManager* manager_;  // null in read-only mode
  ServeOptions options_;
  std::unique_ptr<ThreadPool> pool_;     // null when num_threads <= 1
  std::unique_ptr<AggregateCache> cache_;  // null when cache_slots <= 0
  std::unique_ptr<AggIndex> agg_index_;    // null when !options.agg_index

  /// Readers shared, maintenance exclusive; acquired before the cache
  /// mutex, never after it.
  std::shared_mutex snapshot_mu_;
  std::atomic<int64_t> generation_{0};

  // Cached global-metrics handles (null when observability is disabled).
  class Counter* queries_counter_;
  class Counter* mutations_counter_;
  class Counter* partitions_counter_;
  class Counter* index_answers_counter_;
  class Counter* index_fallbacks_counter_;
  class Gauge* generation_gauge_;
  class Histogram* query_us_histogram_;
};

}  // namespace iolap

#endif  // IOLAP_SERVE_QUERY_SERVICE_H_
