#include "serve/query_service.h"

#include <utility>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace iolap {

namespace {

Histogram* GlobalHistogramOrNull(const char* name) {
  MetricsRegistry* m = GlobalMetrics();
  return m != nullptr ? m->histogram(name) : nullptr;
}

}  // namespace

QueryService::QueryService(MaintenanceManager* manager,
                           const ServeOptions& options)
    : env_(&manager->env()),
      schema_(&manager->schema()),
      edb_(&manager->edb()),
      manager_(manager),
      options_(options),
      queries_counter_(GlobalCounter("serve.queries")),
      mutations_counter_(GlobalCounter("serve.mutations")),
      partitions_counter_(GlobalCounter("serve.scan_partitions")),
      index_answers_counter_(GlobalCounter("serve.index_answers")),
      index_fallbacks_counter_(GlobalCounter("serve.index_fallbacks")),
      generation_gauge_(GlobalGauge("serve.generation")),
      query_us_histogram_(GlobalHistogramOrNull("serve.query_us")) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  if (options_.cache_slots > 0) {
    cache_ = std::make_unique<AggregateCache>(options_.cache_slots);
  }
  if (options_.agg_index) {
    agg_index_ = std::make_unique<AggIndex>(env_, schema_, edb_);
    manager_->set_change_listener(agg_index_.get());
  }
}

QueryService::QueryService(StorageEnv* env, const StarSchema* schema,
                           const TypedFile<EdbRecord>* edb,
                           const ServeOptions& options)
    : env_(env),
      schema_(schema),
      edb_(edb),
      manager_(nullptr),
      options_(options),
      queries_counter_(GlobalCounter("serve.queries")),
      mutations_counter_(GlobalCounter("serve.mutations")),
      partitions_counter_(GlobalCounter("serve.scan_partitions")),
      index_answers_counter_(GlobalCounter("serve.index_answers")),
      index_fallbacks_counter_(GlobalCounter("serve.index_fallbacks")),
      generation_gauge_(GlobalGauge("serve.generation")),
      query_us_histogram_(GlobalHistogramOrNull("serve.query_us")) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  if (options_.cache_slots > 0) {
    cache_ = std::make_unique<AggregateCache>(options_.cache_slots);
  }
  if (options_.agg_index) {
    agg_index_ = std::make_unique<AggIndex>(env_, schema_, edb_);
  }
}

QueryService::~QueryService() {
  // The manager may outlive this service; never leave it pointing at the
  // index we own.
  if (manager_ != nullptr && agg_index_ != nullptr) {
    manager_->set_change_listener(nullptr);
  }
}

int QueryService::PartitionCount(int64_t rows) const {
  if (pool_ == nullptr || rows <= options_.min_partition_rows) return 1;
  const int64_t by_rows =
      (rows + options_.min_partition_rows - 1) / options_.min_partition_rows;
  const int64_t p =
      std::min<int64_t>(by_rows, static_cast<int64_t>(pool_->num_threads()));
  return static_cast<int>(std::max<int64_t>(1, p));
}

Result<AggregateResult> QueryService::ScanAggregate(const QueryRegion& region,
                                                    AggregateFunc func) {
  const int64_t rows = edb_->size();
  const int num_parts = PartitionCount(rows);
  if (partitions_counter_ != nullptr) partitions_counter_->Add(num_parts);

  std::vector<AggregateResult> parts(num_parts);
  auto scan_partition = [this, &region](int64_t start, int64_t end,
                                        AggregateResult* part) -> Status {
    auto cursor = edb_->Scan(env_->pool(), start, end);
    EdbRecord rec;
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
      if (rec.weight == 0 && rec.fact_id == -1) continue;  // tombstone
      if (!RegionContainsLeaf(*schema_, region, rec.leaf)) continue;
      AccumulateAggregate(part, rec.weight, rec.measure);
    }
    return Status::Ok();
  };

  if (num_parts == 1) {
    IOLAP_RETURN_IF_ERROR(scan_partition(0, rows, &parts[0]));
  } else {
    // Page-aligned contiguous partitions: no two tasks share a page, so
    // every read pin is for a page only this task touches.
    const int64_t pages = edb_->size_in_pages();
    const int64_t pages_per_part = (pages + num_parts - 1) / num_parts;
    std::vector<TaskFuture> futures;
    futures.reserve(num_parts);
    for (int p = 0; p < num_parts; ++p) {
      const int64_t start = std::min(
          rows, p * pages_per_part * TypedFile<EdbRecord>::kRecordsPerPage);
      const int64_t end =
          std::min(rows, (p + 1) * pages_per_part *
                             TypedFile<EdbRecord>::kRecordsPerPage);
      AggregateResult* part = &parts[p];
      futures.push_back(pool_->Submit([scan_partition, start, end, part] {
        return scan_partition(start, end, part);
      }));
    }
    Status status = Status::Ok();
    for (const TaskFuture& f : futures) {
      Status s = f.Wait();
      if (status.ok() && !s.ok()) status = s;
    }
    IOLAP_RETURN_IF_ERROR(status);
  }

  AggregateResult out;
  // Ascending partition order keeps the merged result deterministic for a
  // fixed partition count.
  for (const AggregateResult& part : parts) MergeAggregate(&out, part);
  FinalizeAggregate(&out, func);
  return out;
}

Result<std::vector<AggregateResult>> QueryService::ScanRollUp(
    const QueryRegion& region, int dim, int level, AggregateFunc func) {
  if (dim < 0 || dim >= schema_->num_dims()) {
    return Status::InvalidArgument("rollup dimension out of range");
  }
  const Hierarchy& h = schema_->dim(dim);
  if (level < 1 || level > h.num_levels()) {
    return Status::InvalidArgument("rollup level out of range");
  }
  const int64_t num_groups = h.num_nodes_at_level(level);
  const int64_t rows = edb_->size();
  const int num_parts = PartitionCount(rows);
  if (partitions_counter_ != nullptr) partitions_counter_->Add(num_parts);

  std::vector<std::vector<AggregateResult>> parts(num_parts);
  for (auto& part : parts) part.resize(num_groups);
  auto scan_partition = [this, &region, &h, dim, level](
                            int64_t start, int64_t end,
                            std::vector<AggregateResult>* part) -> Status {
    auto cursor = edb_->Scan(env_->pool(), start, end);
    EdbRecord rec;
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
      if (rec.weight == 0 && rec.fact_id == -1) continue;  // tombstone
      if (!RegionContainsLeaf(*schema_, region, rec.leaf)) continue;
      AggregateResult& g = (*part)[h.LeafAncestorOrdinal(rec.leaf[dim], level)];
      AccumulateAggregate(&g, rec.weight, rec.measure);
    }
    return Status::Ok();
  };

  if (num_parts == 1) {
    IOLAP_RETURN_IF_ERROR(scan_partition(0, rows, &parts[0]));
  } else {
    const int64_t pages = edb_->size_in_pages();
    const int64_t pages_per_part = (pages + num_parts - 1) / num_parts;
    std::vector<TaskFuture> futures;
    futures.reserve(num_parts);
    for (int p = 0; p < num_parts; ++p) {
      const int64_t start = std::min(
          rows, p * pages_per_part * TypedFile<EdbRecord>::kRecordsPerPage);
      const int64_t end =
          std::min(rows, (p + 1) * pages_per_part *
                             TypedFile<EdbRecord>::kRecordsPerPage);
      std::vector<AggregateResult>* part = &parts[p];
      futures.push_back(pool_->Submit([scan_partition, start, end, part] {
        return scan_partition(start, end, part);
      }));
    }
    Status status = Status::Ok();
    for (const TaskFuture& f : futures) {
      Status s = f.Wait();
      if (status.ok() && !s.ok()) status = s;
    }
    IOLAP_RETURN_IF_ERROR(status);
  }

  std::vector<AggregateResult> groups(num_groups);
  for (const std::vector<AggregateResult>& part : parts) {
    for (int64_t g = 0; g < num_groups; ++g) {
      MergeAggregate(&groups[g], part[g]);
    }
  }
  for (AggregateResult& g : groups) FinalizeAggregate(&g, func);
  return groups;
}

Result<AggregateResult> QueryService::Aggregate(const QueryRegion& region,
                                                AggregateFunc func,
                                                int64_t* generation,
                                                bool* cache_hit) {
  TraceSpan span("serve.query");
  Stopwatch timer;
  if (queries_counter_ != nullptr) queries_counter_->Add(1);
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  const int64_t gen = generation_.load(std::memory_order_acquire);
  if (generation != nullptr) *generation = gen;
  if (cache_hit != nullptr) *cache_hit = false;

  AggregateCacheKey key;
  std::vector<AggregateResult> cached;
  if (cache_ != nullptr) {
    key = AggregateCache::MakeAggregateKey(*schema_, region, func);
    if (cache_->Lookup(key, &cached) && cached.size() == 1) {
      if (cache_hit != nullptr) *cache_hit = true;
      span.AddArg("cache_hit", 1);
      if (query_us_histogram_ != nullptr) {
        query_us_histogram_->Record(
            static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
      }
      return cached[0];
    }
  }

  AggregateResult out;
  bool answered = false;
  if (agg_index_ != nullptr) {
    // The index tier: answer the miss from covering node partials. Any
    // index error falls through to the scan — the scan is always correct.
    Result<AggregateResult> indexed = agg_index_->Aggregate(region, func);
    if (indexed.ok()) {
      out = *indexed;
      answered = true;
      span.AddArg("index_answer", 1);
      if (index_answers_counter_ != nullptr) index_answers_counter_->Add(1);
    } else if (index_fallbacks_counter_ != nullptr) {
      index_fallbacks_counter_->Add(1);
    }
  }
  if (!answered) {
    IOLAP_ASSIGN_OR_RETURN(out, ScanAggregate(region, func));
  }
  if (cache_ != nullptr) {
    cache_->Insert(key, RegionToRect(*schema_, region), {out}, gen);
  }
  if (query_us_histogram_ != nullptr) {
    query_us_histogram_->Record(
        static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
  }
  return out;
}

Result<std::vector<AggregateResult>> QueryService::RollUp(
    const QueryRegion& region, int dim, int level, AggregateFunc func,
    int64_t* generation, bool* cache_hit) {
  TraceSpan span("serve.query");
  Stopwatch timer;
  if (queries_counter_ != nullptr) queries_counter_->Add(1);
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  const int64_t gen = generation_.load(std::memory_order_acquire);
  if (generation != nullptr) *generation = gen;
  if (cache_hit != nullptr) *cache_hit = false;

  AggregateCacheKey key;
  std::vector<AggregateResult> cached;
  if (cache_ != nullptr) {
    key = AggregateCache::MakeRollUpKey(*schema_, region, dim, level, func);
    if (cache_->Lookup(key, &cached)) {
      if (cache_hit != nullptr) *cache_hit = true;
      span.AddArg("cache_hit", 1);
      if (query_us_histogram_ != nullptr) {
        query_us_histogram_->Record(
            static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
      }
      return cached;
    }
  }

  std::vector<AggregateResult> groups;
  bool answered = false;
  if (agg_index_ != nullptr) {
    Result<std::vector<AggregateResult>> indexed =
        agg_index_->RollUp(region, dim, level, func);
    if (indexed.ok()) {
      groups = std::move(*indexed);
      answered = true;
      span.AddArg("index_answer", 1);
      if (index_answers_counter_ != nullptr) index_answers_counter_->Add(1);
    } else if (index_fallbacks_counter_ != nullptr) {
      index_fallbacks_counter_->Add(1);
    }
  }
  if (!answered) {
    IOLAP_ASSIGN_OR_RETURN(groups, ScanRollUp(region, dim, level, func));
  }
  if (cache_ != nullptr) {
    cache_->Insert(key, RegionToRect(*schema_, region), groups, gen);
  }
  if (query_us_histogram_ != nullptr) {
    query_us_histogram_->Record(
        static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
  }
  return groups;
}

Result<std::vector<EdbRecord>> QueryService::CompletionsOf(
    FactId fact_id, int64_t* generation) {
  TraceSpan span("serve.query");
  if (queries_counter_ != nullptr) queries_counter_->Add(1);
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  if (generation != nullptr) {
    *generation = generation_.load(std::memory_order_acquire);
  }
  QueryEngine engine(env_, schema_, edb_);
  return engine.CompletionsOf(fact_id);
}

Result<AggregateResult> QueryService::UncachedAggregate(
    const QueryRegion& region, AggregateFunc func, int64_t* generation) {
  TraceSpan span("serve.query");
  if (queries_counter_ != nullptr) queries_counter_->Add(1);
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  if (generation != nullptr) {
    *generation = generation_.load(std::memory_order_acquire);
  }
  return ScanAggregate(region, func);
}

Result<std::vector<AggregateResult>> QueryService::UncachedRollUp(
    const QueryRegion& region, int dim, int level, AggregateFunc func,
    int64_t* generation) {
  TraceSpan span("serve.query");
  if (queries_counter_ != nullptr) queries_counter_->Add(1);
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  if (generation != nullptr) {
    *generation = generation_.load(std::memory_order_acquire);
  }
  return ScanRollUp(region, dim, level, func);
}

Status QueryService::MutateLocked(
    MaintenanceStats* stats,
    const std::function<Status(MaintenanceStats*)>& apply) {
  if (manager_ == nullptr) {
    return Status::FailedPrecondition(
        "QueryService is read-only (no MaintenanceManager)");
  }
  TraceSpan span("serve.commit");
  std::unique_lock<std::shared_mutex> lock(snapshot_mu_);
  MaintenanceStats local;
  MaintenanceStats* s = stats != nullptr ? stats : &local;
  // Stats may be reused across batches; only this batch's boxes matter.
  const size_t box_start = s->touched_boxes.size();
  Status status = apply(s);
  // Bump even on failure: a failed batch may have partially applied, and a
  // stale generation must never look current.
  const int64_t gen =
      generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (generation_gauge_ != nullptr) generation_gauge_->Set(gen);
  if (mutations_counter_ != nullptr) mutations_counter_->Add(1);
  if (cache_ != nullptr) {
    if (!status.ok()) {
      cache_->Clear();
    } else {
      const int64_t dropped = cache_->Invalidate(
          s->touched_boxes.data() + box_start,
          s->touched_boxes.size() - box_start, schema_->num_dims());
      span.AddArg("invalidated_entries", dropped);
    }
  }
  if (agg_index_ != nullptr) {
    if (status.ok()) {
      // Fold the batch's buffered row deltas into the index; its dirty
      // min/max marks come from the same touched boxes the cache used.
      Status committed =
          agg_index_->Commit(s->touched_boxes.data() + box_start,
                             s->touched_boxes.size() - box_start);
      if (!committed.ok()) agg_index_->Invalidate();
    } else {
      agg_index_->Invalidate();
    }
  }
  return status;
}

Status QueryService::ApplyUpdates(const std::vector<FactUpdate>& updates,
                                  MaintenanceStats* stats) {
  return MutateLocked(stats, [this, &updates](MaintenanceStats* s) {
    return manager_->ApplyUpdates(updates, s);
  });
}

Status QueryService::InsertFacts(const std::vector<FactRecord>& inserts,
                                 MaintenanceStats* stats) {
  return MutateLocked(stats, [this, &inserts](MaintenanceStats* s) {
    return manager_->InsertFacts(inserts, s);
  });
}

Status QueryService::DeleteFacts(const std::vector<FactRecord>& deletes,
                                 MaintenanceStats* stats) {
  return MutateLocked(stats, [this, &deletes](MaintenanceStats* s) {
    return manager_->DeleteFacts(deletes, s);
  });
}

Result<int64_t> QueryService::Compact() {
  if (manager_ == nullptr) {
    return Status::FailedPrecondition(
        "QueryService is read-only (no MaintenanceManager)");
  }
  TraceSpan span("serve.commit");
  std::unique_lock<std::shared_mutex> lock(snapshot_mu_);
  Result<int64_t> removed = manager_->CompactEdb();
  if (!removed.ok()) {
    // The rewrite may have partially applied; drop everything and force a
    // new generation so nothing stale survives.
    if (cache_ != nullptr) cache_->Clear();
    if (agg_index_ != nullptr) agg_index_->Invalidate();
    const int64_t gen =
        generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (generation_gauge_ != nullptr) generation_gauge_->Set(gen);
  }
  // On success the logical EDB content is unchanged (only tombstones were
  // squeezed out), so cached results (and the index, which is keyed by
  // cell, not row position) stay valid and the generation holds.
  return removed;
}

}  // namespace iolap
