#include "serve/query_service.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/stopwatch.h"
#include "edb/columnar.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace iolap {

namespace {

int ClampShards(int requested) {
  return std::max(1, std::min(requested, kMaxShards));
}

bool IsTombstone(const EdbRecord& rec) {
  return rec.weight == 0 && rec.fact_id == -1;
}

/// IOLAP_EDB_FORMAT=row|columnar force-overrides the configured scan
/// format — the CI lever for re-running whole suites columnar-forced.
ServeOptions WithEnvOverrides(ServeOptions options) {
  const char* format = std::getenv("IOLAP_EDB_FORMAT");
  if (format != nullptr) {
    if (std::string_view(format) == "columnar") {
      options.edb_format = EdbFormat::kColumnar;
    } else if (std::string_view(format) == "row") {
      options.edb_format = EdbFormat::kRow;
    }
  }
  return options;
}

}  // namespace

QueryService::QueryService(MaintenanceManager* manager,
                           const ServeOptions& options)
    : env_(&manager->env()),
      schema_(&manager->schema()),
      edb_(&manager->edb()),
      manager_(manager),
      options_(WithEnvOverrides(options)),
      queries_counter_(GlobalCounter("serve.queries")),
      mutations_counter_(GlobalCounter("serve.mutations")),
      partitions_counter_(GlobalCounter("serve.scan_partitions")),
      index_answers_counter_(GlobalCounter("serve.index_answers")),
      index_fallbacks_counter_(GlobalCounter("serve.index_fallbacks")),
      generation_gauge_(GlobalGauge("serve.generation")),
      shards_gauge_(GlobalGauge("serve.shards")),
      query_us_histogram_(GlobalHistogram("serve.query_us")),
      scan_rows_histogram_(GlobalHistogram("serve.scan_rows")),
      partitions_histogram_(GlobalHistogram("serve.partitions_per_query")) {
  options_.num_shards = ClampShards(options_.num_shards);
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  if (options_.cache_slots > 0) {
    cache_ = std::make_unique<AggregateCache>(options_.cache_slots);
  }
  if (options_.agg_index) {
    agg_index_ = std::make_unique<AggIndex>(env_, schema_, edb_);
    if (options_.edb_format == EdbFormat::kColumnar) {
      agg_index_->set_columnar_provider(
          [this] { return ColumnarSnapshot(); });
    }
  }
  if (options_.synopsis) {
    synopsis_ = std::make_unique<SynopsisStore>(env_, schema_, edb_);
  }
  if (agg_index_ != nullptr) change_fanout_.Add(agg_index_.get());
  if (synopsis_ != nullptr) change_fanout_.Add(synopsis_.get());
  if (!change_fanout_.empty()) manager_->set_change_listener(&change_fanout_);
  for (int t = 0; t < 4; ++t) {
    tier_counters_[t] = GlobalCounter(
        std::string("serve.answer_tier.") +
        AnswerTierName(static_cast<AnswerTier>(t)));
  }
  GroupByOptions gopts;
  gopts.chunk_rows = options_.min_partition_rows;
  gopts.radix_min_groups = options_.radix_min_groups;
  groupby_ = std::make_unique<GroupByEngine>(env_, schema_, edb_, pool_.get(),
                                             gopts);
  // Front-load shard construction (one EDB scan); on failure the first
  // query retries and surfaces the error.
  const Status init = EnsureShardsReady();
  (void)init;
}

QueryService::QueryService(StorageEnv* env, const StarSchema* schema,
                           const TypedFile<EdbRecord>* edb,
                           const ServeOptions& options)
    : env_(env),
      schema_(schema),
      edb_(edb),
      manager_(nullptr),
      options_(WithEnvOverrides(options)),
      queries_counter_(GlobalCounter("serve.queries")),
      mutations_counter_(GlobalCounter("serve.mutations")),
      partitions_counter_(GlobalCounter("serve.scan_partitions")),
      index_answers_counter_(GlobalCounter("serve.index_answers")),
      index_fallbacks_counter_(GlobalCounter("serve.index_fallbacks")),
      generation_gauge_(GlobalGauge("serve.generation")),
      shards_gauge_(GlobalGauge("serve.shards")),
      query_us_histogram_(GlobalHistogram("serve.query_us")),
      scan_rows_histogram_(GlobalHistogram("serve.scan_rows")),
      partitions_histogram_(GlobalHistogram("serve.partitions_per_query")) {
  options_.num_shards = ClampShards(options_.num_shards);
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  if (options_.cache_slots > 0) {
    cache_ = std::make_unique<AggregateCache>(options_.cache_slots);
  }
  if (options_.agg_index) {
    agg_index_ = std::make_unique<AggIndex>(env_, schema_, edb_);
    if (options_.edb_format == EdbFormat::kColumnar) {
      agg_index_->set_columnar_provider(
          [this] { return ColumnarSnapshot(); });
    }
  }
  if (options_.synopsis) {
    // Read-only mode: no change stream to subscribe to, but the EDB is
    // static, so the build-time synopsis stays exact forever.
    synopsis_ = std::make_unique<SynopsisStore>(env_, schema_, edb_);
  }
  for (int t = 0; t < 4; ++t) {
    tier_counters_[t] = GlobalCounter(
        std::string("serve.answer_tier.") +
        AnswerTierName(static_cast<AnswerTier>(t)));
  }
  GroupByOptions gopts;
  gopts.chunk_rows = options_.min_partition_rows;
  gopts.radix_min_groups = options_.radix_min_groups;
  groupby_ = std::make_unique<GroupByEngine>(env_, schema_, edb_, pool_.get(),
                                             gopts);
  const Status init = EnsureShardsReady();
  (void)init;
}

QueryService::~QueryService() {
  // The manager may outlive this service; never leave it pointing at the
  // fanout (and through it the index / synopsis) we own.
  if (manager_ != nullptr && !change_fanout_.empty()) {
    manager_->set_change_listener(nullptr);
  }
}

// ---------------------------------------------------------------------------
// Shard construction and range maintenance.

void QueryService::MakeShards(int num_shards) {
  shards_.clear();
  shards_.reserve(num_shards);
  for (int s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    const std::string prefix = "serve.shard." + std::to_string(s);
    shard->queries = GlobalCounter(prefix + ".queries");
    shard->mutations = GlobalCounter(prefix + ".mutations");
    shard->gen_gauge = GlobalGauge(prefix + ".generation");
    shards_.push_back(std::move(shard));
  }
  if (shards_gauge_ != nullptr) shards_gauge_->Set(num_shards);
}

Status QueryService::EnsureShardsReady() {
  if (shards_ready_.load(std::memory_order_acquire)) return Status::Ok();
  std::lock_guard<std::mutex> init_lock(init_mu_);
  if (shards_ready_.load(std::memory_order_acquire)) return Status::Ok();
  IOLAP_RETURN_IF_ERROR(InitShardsLocked());
  if (options_.edb_format == EdbFormat::kColumnar &&
      ColumnarSnapshot() == nullptr) {
    // Front-load the mirror conversion while everything is quiescent.
    // Failure is not fatal: queries simply scan the row file.
    const Status built = BuildColumnar();
    (void)built;
  }
  if (synopsis_ != nullptr && !synopsis_->ready()) {
    // One EDB scan while everything is quiescent; like the index, a build
    // failure just leaves bounded queries falling back to scans.
    synopsis_->SetShardBounds(SynopsisBounds());
    const Status built = synopsis_->RebuildIfStale();
    (void)built;
  }
  shards_ready_.store(true, std::memory_order_release);
  return Status::Ok();
}

std::vector<int32_t> QueryService::SynopsisBounds() const {
  if (shards_.size() > 1) {
    std::vector<int32_t> begins;
    begins.reserve(shards_.size() + 1);
    for (int s = 0; s < static_cast<int>(shards_.size()); ++s) {
      begins.push_back(shard_map_.shard_begin(s));
    }
    begins.push_back(
        shard_map_.shard_end(static_cast<int>(shards_.size()) - 1));
    return begins;
  }
  return {0, schema_->dim(0).num_leaves()};
}

Status QueryService::InitShardsLocked() {
  // Single-shard mode needs no geometry and no scan: one lock, the whole
  // EDB as the implicit range — the classic snapshot-lock behavior.
  if (options_.num_shards <= 1) {
    if (shards_.empty()) MakeShards(1);
    return Status::Ok();
  }
  // A re-init (after a failed range rebuild) must exclude mutators and
  // in-flight queries: lock order init_mu_ -> mutation_mu_ -> all shards.
  // The *first* init needs no locks — nothing touches shard state before
  // shards_ready_, and every entry point funnels through init_mu_.
  std::unique_lock<std::mutex> mutation_lock(mutation_mu_, std::defer_lock);
  std::vector<std::unique_lock<std::shared_mutex>> shard_locks;
  if (!shards_.empty()) {
    mutation_lock.lock();
    shard_locks.reserve(shards_.size());
    for (auto& s : shards_) shard_locks.emplace_back(s->mu);
  }
  if (shards_.empty()) {
    // One EDB pass for the per-leaf row histogram the packer balances
    // against, then build the (immutable) map from it and the alive
    // component boxes.
    std::vector<int64_t> leaf_rows(schema_->dim(0).num_leaves(), 0);
    auto cursor = edb_->Scan(env_->pool());
    EdbRecord rec;
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
      if (IsTombstone(rec)) continue;
      ++leaf_rows[rec.leaf[0]];
    }
    std::vector<Rect> boxes;
    if (manager_ != nullptr) {
      for (const auto& comp : manager_->directory()) {
        if (comp.alive) boxes.push_back(comp.bbox);
      }
    }
    shard_map_ =
        ShardMap::Build(*schema_, options_.num_shards, boxes, leaf_rows);
    MakeShards(shard_map_.num_shards());
  }
  if (shards_.size() == 1) return Status::Ok();  // atoms forced one shard
  for (auto& s : shards_) s->ranges.clear();
  int prev_shard = 0;
  IOLAP_RETURN_IF_ERROR(AppendRangesFromScan(0, edb_->size(), &prev_shard));
  if (agg_index_ != nullptr) {
    // Sharded mode gates the index's query-path rebuilds (a query holds
    // only its shards' locks, so it must not scan the whole EDB) and
    // front-loads the first build here, where everything is quiescent.
    agg_index_->set_rebuild_on_query(false);
    const Status built = agg_index_->RebuildIfStale();
    (void)built;  // failure: queries fall back to scans until a commit
  }
  return Status::Ok();
}

Status QueryService::AppendRangesFromScan(int64_t begin, int64_t end,
                                          int* prev_shard) {
  const auto push = [this](int shard, int64_t b, int64_t e) {
    std::vector<RowRange>& rs = shards_[shard]->ranges;
    if (!rs.empty() && rs.back().end == b) {
      rs.back().end = e;  // extend the adjacent run
      return;
    }
    rs.push_back(RowRange{b, e});
  };
  auto cursor = edb_->Scan(env_->pool(), begin, end);
  EdbRecord rec;
  int run_shard = *prev_shard;
  int64_t run_begin = begin;
  for (int64_t row = begin; row < end; ++row) {
    IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
    // Tombstones carry no leaf; they stay with the run they interrupt so
    // ranges remain maximal (any owner is correct — they match nothing).
    const int shard =
        IsTombstone(rec) ? run_shard : shard_map_.ShardOfLeaf(rec.leaf[0]);
    if (shard != run_shard) {
      if (row > run_begin) push(run_shard, run_begin, row);
      run_shard = shard;
      run_begin = row;
    }
  }
  if (end > run_begin) push(run_shard, run_begin, end);
  *prev_shard = run_shard;
  return Status::Ok();
}

Status QueryService::RebuildTouchedLocked(const std::vector<int>& touched,
                                          int64_t old_rows) {
  // A batch only moves rows *within* the components it re-allocated, and
  // every such component's bbox maps into `touched` — so rescanning the
  // touched shards' old ranges plus the appended tail re-derives every
  // range that could have changed, and rows found there can only map back
  // into touched shards.
  std::vector<RowRange> spans;
  for (int s : touched) {
    std::vector<RowRange>& rs = shards_[s]->ranges;
    spans.insert(spans.end(), rs.begin(), rs.end());
    rs.clear();
  }
  const int64_t rows = edb_->size();
  if (rows > old_rows) spans.push_back(RowRange{old_rows, rows});
  std::sort(spans.begin(), spans.end(),
            [](const RowRange& a, const RowRange& b) {
              return a.begin < b.begin;
            });
  int prev_shard = touched.empty() ? 0 : touched.front();
  int64_t next = 0;  // old ranges are disjoint; just clamp and skip empties
  for (const RowRange& span : spans) {
    const int64_t b = std::max(span.begin, next);
    const int64_t e = std::min(span.end, rows);
    if (e <= b) continue;
    IOLAP_RETURN_IF_ERROR(AppendRangesFromScan(b, e, &prev_shard));
    next = e;
  }
  return Status::Ok();
}

std::vector<int> QueryService::TouchedShards(
    const std::vector<Rect>& rects) const {
  const int n = static_cast<int>(shards_.size());
  std::vector<int> out;
  if (n <= 1 || rects.empty()) {
    // Single shard, or a batch with no geometry: lock everything.
    out.reserve(n);
    for (int s = 0; s < n; ++s) out.push_back(s);
    return out;
  }
  std::vector<bool> hit(n, false);
  const auto mark = [&](const Rect& r) {
    const auto [lo, hi] = shard_map_.ShardRangeOfRect(r);
    for (int s = lo; s <= hi; ++s) hit[s] = true;
  };
  for (const Rect& r : rects) mark(r);
  if (manager_ != nullptr) {
    // Components the batch overlaps are re-allocated whole; their rows can
    // move anywhere inside the component bbox, which may have grown past
    // the map's build-time geometry (post-build merges) — so mark every
    // shard the *current* bbox intersects.
    for (const auto& comp : manager_->directory()) {
      if (!comp.alive) continue;
      for (const Rect& r : rects) {
        if (RectsIntersect(comp.bbox, r, schema_->num_dims())) {
          mark(comp.bbox);
          break;
        }
      }
    }
  }
  for (int s = 0; s < n; ++s) {
    if (hit[s]) out.push_back(s);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Query paths.

QueryService::LockedShards QueryService::AcquireShared(
    const Rect& rect, ShardSnapshot* snapshot) {
  LockedShards ls;
  int lo = 0;
  int hi = 0;
  if (shards_.size() > 1) {
    std::tie(lo, hi) = shard_map_.ShardRangeOfRect(rect);
  }
  ls.first = lo;
  ls.last = hi;
  ls.locks.reserve(hi - lo + 1);
  for (int s = lo; s <= hi; ++s) ls.locks.emplace_back(shards_[s]->mu);
  ls.global_gen = generation_.load(std::memory_order_acquire);
  if (snapshot != nullptr) {
    snapshot->first_shard = lo;
    snapshot->generations.clear();
  }
  for (int s = lo; s <= hi; ++s) {
    if (snapshot != nullptr) {
      snapshot->generations.push_back(
          shards_[s]->gen.load(std::memory_order_acquire));
    }
    if (shards_[s]->queries != nullptr) shards_[s]->queries->Add(1);
  }
  return ls;
}

std::vector<RowRange> QueryService::CollectRanges(
    const LockedShards& ls) const {
  std::vector<RowRange> out;
  if (shards_.size() <= 1) {
    const int64_t rows = edb_->size();
    if (rows > 0) out.push_back(RowRange{0, rows});
    return out;
  }
  for (int s = ls.first; s <= ls.last; ++s) {
    const std::vector<RowRange>& rs = shards_[s]->ranges;
    out.insert(out.end(), rs.begin(), rs.end());
  }
  std::sort(out.begin(), out.end(),
            [](const RowRange& a, const RowRange& b) {
              return a.begin < b.begin;
            });
  // Coalesce runs adjacent across shards so the chunker sees maximal spans.
  std::vector<RowRange> merged;
  merged.reserve(out.size());
  for (const RowRange& r : out) {
    if (!merged.empty() && merged.back().end == r.begin) {
      merged.back().end = r.end;
    } else {
      merged.push_back(r);
    }
  }
  return merged;
}

namespace {

/// A scan may use the mirror only if it covers every row the scan's ranges
/// reference. Ranges of the locked shards never reach past the mirror's
/// rows while a concurrent mutation is appending (the mutation holds the
/// touched shards exclusively and drops the mirror), but the check keeps
/// correctness independent of that reasoning.
bool MirrorCoversRanges(const ColumnarEdb* mirror,
                        const std::vector<RowRange>& ranges) {
  return mirror != nullptr &&
         (ranges.empty() || ranges.back().end <= mirror->num_rows());
}

}  // namespace

Result<AggregateResult> QueryService::ScanAggregate(const LockedShards& ls,
                                                    const QueryRegion& region,
                                                    AggregateFunc func) {
  GroupByStats gstats;
  const std::vector<RowRange> ranges = CollectRanges(ls);
  const std::shared_ptr<const ColumnarEdb> mirror = ColumnarSnapshot();
  const ColumnarEdb* columnar =
      MirrorCoversRanges(mirror.get(), ranges) ? mirror.get() : nullptr;
  IOLAP_ASSIGN_OR_RETURN(
      AggregateResult out,
      groupby_->Aggregate(ranges, region, func, &gstats, columnar));
  RecordScanStats(gstats);
  return out;
}

Result<std::vector<AggregateResult>> QueryService::ScanRollUp(
    const LockedShards& ls, const QueryRegion& region, int dim, int level,
    AggregateFunc func) {
  GroupByStats gstats;
  const std::vector<RowRange> ranges = CollectRanges(ls);
  const std::shared_ptr<const ColumnarEdb> mirror = ColumnarSnapshot();
  const ColumnarEdb* columnar =
      MirrorCoversRanges(mirror.get(), ranges) ? mirror.get() : nullptr;
  IOLAP_ASSIGN_OR_RETURN(
      std::vector<AggregateResult> groups,
      groupby_->RollUp(ranges, region, dim, level, func, &gstats, columnar));
  RecordScanStats(gstats);
  return groups;
}

void QueryService::RecordScanStats(const GroupByStats& gstats) {
  if (partitions_counter_ != nullptr) partitions_counter_->Add(gstats.chunks);
  if (scan_rows_histogram_ != nullptr) {
    scan_rows_histogram_->Record(gstats.rows_scanned);
  }
  if (partitions_histogram_ != nullptr) {
    partitions_histogram_->Record(gstats.chunks);
  }
}

Result<AggregateResult> QueryService::Aggregate(const QueryRegion& region,
                                                AggregateFunc func,
                                                int64_t* generation,
                                                bool* cache_hit,
                                                ShardSnapshot* shards) {
  AnswerStats as;
  IOLAP_ASSIGN_OR_RETURN(
      AggregateResult out,
      Aggregate(region, func, AnswerSpec::Exact(), &as, generation, shards));
  if (cache_hit != nullptr) *cache_hit = as.cache_hit;
  return out;
}

Result<AggregateResult> QueryService::Aggregate(const QueryRegion& region,
                                                AggregateFunc func,
                                                const AnswerSpec& spec,
                                                AnswerStats* answer_stats,
                                                int64_t* generation,
                                                ShardSnapshot* shards) {
  // A bounded spec with no error budget IS the exact contract; collapsing
  // it here makes bounded(0) trivially memcmp-equal to exact mode.
  const bool bounded =
      spec.mode == AnswerMode::kBounded && spec.epsilon > 0;
  TraceSpan span("serve.query");
  Stopwatch timer;
  if (queries_counter_ != nullptr) queries_counter_->Add(1);
  IOLAP_RETURN_IF_ERROR(EnsureShardsReady());
  const auto finish = [&](AnswerTier tier, double bound, bool exact,
                          bool cache_hit) {
    if (answer_stats != nullptr) {
      answer_stats->tier = tier;
      answer_stats->bound = bound;
      answer_stats->cache_hit = cache_hit;
      answer_stats->exact = exact;
    }
    span.AddArg("tier", static_cast<int64_t>(tier));
    const int t = static_cast<int>(tier);
    if (tier_counters_[t] != nullptr) tier_counters_[t]->Add(1);
    if (query_us_histogram_ != nullptr) {
      query_us_histogram_->Record(
          static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
    }
  };
  const Rect rect = RegionToRect(*schema_, region);
  LockedShards ls = AcquireShared(rect, shards);
  if (generation != nullptr) *generation = ls.global_gen;

  // Cache tier. An exact entry serves both contracts (a bound of zero fits
  // any epsilon); a bounded entry serves only bounded queries whose budget
  // its recorded bound fits — never an exact query.
  AggregateCacheKey exact_key;
  AggregateCacheKey bounded_key;
  std::vector<AggregateResult> cached;
  if (cache_ != nullptr) {
    exact_key = AggregateCache::MakeAggregateKey(*schema_, region, func,
                                                 AnswerMode::kExact);
    if (cache_->Lookup(exact_key, &cached) && cached.size() == 1) {
      finish(AnswerTier::kCache, 0, true, true);
      return cached[0];
    }
    if (bounded) {
      bounded_key = AggregateCache::MakeAggregateKey(*schema_, region, func,
                                                     AnswerMode::kBounded);
      double cached_bound = 0;
      if (cache_->Lookup(bounded_key, &cached, nullptr, &cached_bound) &&
          cached.size() == 1 && cached_bound <= spec.epsilon) {
        finish(AnswerTier::kCache, cached_bound, cached_bound == 0, true);
        return cached[0];
      }
    }
  }

  // Index tier: exact answers from covering node partials. Any index error
  // falls through — the lower tiers are always correct.
  if (agg_index_ != nullptr) {
    Result<AggregateResult> indexed = agg_index_->Aggregate(region, func);
    if (indexed.ok()) {
      span.AddArg("index_answer", 1);
      if (index_answers_counter_ != nullptr) index_answers_counter_->Add(1);
      if (cache_ != nullptr) {
        cache_->Insert(exact_key, rect, {*indexed}, ls.global_gen,
                       ShardMap::MaskOfRange(ls.first, ls.last));
      }
      finish(AnswerTier::kIndex, 0, true, false);
      return *indexed;
    }
    if (index_fallbacks_counter_ != nullptr) index_fallbacks_counter_->Add(1);
  }

  // Synopsis tier (bounded contracts only): accept the in-memory moment
  // answer iff its proven bound fits the query's epsilon. Cached under the
  // *bounded* key even when the bound is 0, so exact-key entries stay pure
  // index/scan products.
  if (bounded && synopsis_ != nullptr) {
    Result<BoundedAggregate> est =
        synopsis_->EstimateAggregate(region, func, spec.delta);
    if (est.ok() && est->bound <= spec.epsilon) {
      if (cache_ != nullptr) {
        cache_->Insert(bounded_key, rect, {est->result}, ls.global_gen,
                       ShardMap::MaskOfRange(ls.first, ls.last), est->bound);
      }
      finish(AnswerTier::kSynopsis, est->bound, est->exact, false);
      return est->result;
    }
  }

  // Scan tier: the oracle.
  IOLAP_ASSIGN_OR_RETURN(AggregateResult out, ScanAggregate(ls, region, func));
  if (cache_ != nullptr) {
    cache_->Insert(exact_key, rect, {out}, ls.global_gen,
                   ShardMap::MaskOfRange(ls.first, ls.last));
  }
  finish(AnswerTier::kScan, 0, true, false);
  return out;
}

Result<std::vector<AggregateResult>> QueryService::RollUp(
    const QueryRegion& region, int dim, int level, AggregateFunc func,
    int64_t* generation, bool* cache_hit, ShardSnapshot* shards) {
  TraceSpan span("serve.query");
  Stopwatch timer;
  if (queries_counter_ != nullptr) queries_counter_->Add(1);
  IOLAP_RETURN_IF_ERROR(EnsureShardsReady());
  const auto record_time = [&] {
    if (query_us_histogram_ != nullptr) {
      query_us_histogram_->Record(
          static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
    }
  };
  const Rect rect = RegionToRect(*schema_, region);
  LockedShards ls = AcquireShared(rect, shards);
  if (generation != nullptr) *generation = ls.global_gen;
  if (cache_hit != nullptr) *cache_hit = false;

  AggregateCacheKey key;
  std::vector<AggregateResult> cached;
  if (cache_ != nullptr) {
    key = AggregateCache::MakeRollUpKey(*schema_, region, dim, level, func);
    if (cache_->Lookup(key, &cached)) {
      if (cache_hit != nullptr) *cache_hit = true;
      span.AddArg("cache_hit", 1);
      record_time();
      return cached;
    }
  }

  std::vector<AggregateResult> groups;
  bool answered = false;
  if (agg_index_ != nullptr) {
    Result<std::vector<AggregateResult>> indexed =
        agg_index_->RollUp(region, dim, level, func);
    if (indexed.ok()) {
      groups = std::move(*indexed);
      answered = true;
      span.AddArg("index_answer", 1);
      if (index_answers_counter_ != nullptr) index_answers_counter_->Add(1);
    } else if (index_fallbacks_counter_ != nullptr) {
      index_fallbacks_counter_->Add(1);
    }
  }
  if (!answered) {
    IOLAP_ASSIGN_OR_RETURN(groups, ScanRollUp(ls, region, dim, level, func));
  }
  if (cache_ != nullptr) {
    cache_->Insert(key, rect, groups, ls.global_gen,
                   ShardMap::MaskOfRange(ls.first, ls.last));
  }
  record_time();
  return groups;
}

Result<std::vector<EdbRecord>> QueryService::CompletionsOf(
    FactId fact_id, int64_t* generation) {
  TraceSpan span("serve.query");
  if (queries_counter_ != nullptr) queries_counter_->Add(1);
  IOLAP_RETURN_IF_ERROR(EnsureShardsReady());
  // A fact's completions can live anywhere: full-EDB scan, all shards.
  const Rect all = RegionToRect(*schema_, QueryRegion::All());
  LockedShards ls = AcquireShared(all, nullptr);
  if (generation != nullptr) *generation = ls.global_gen;
  QueryEngine engine(env_, schema_, edb_);
  const std::shared_ptr<const ColumnarEdb> mirror = ColumnarSnapshot();
  if (mirror != nullptr && mirror->num_rows() == edb_->size()) {
    engine.set_columnar(mirror.get());
  }
  return engine.CompletionsOf(fact_id);
}

Result<AggregateResult> QueryService::UncachedAggregate(
    const QueryRegion& region, AggregateFunc func, int64_t* generation,
    ShardSnapshot* shards) {
  TraceSpan span("serve.query");
  if (queries_counter_ != nullptr) queries_counter_->Add(1);
  IOLAP_RETURN_IF_ERROR(EnsureShardsReady());
  const Rect rect = RegionToRect(*schema_, region);
  LockedShards ls = AcquireShared(rect, shards);
  if (generation != nullptr) *generation = ls.global_gen;
  return ScanAggregate(ls, region, func);
}

Result<std::vector<AggregateResult>> QueryService::UncachedRollUp(
    const QueryRegion& region, int dim, int level, AggregateFunc func,
    int64_t* generation, ShardSnapshot* shards) {
  TraceSpan span("serve.query");
  if (queries_counter_ != nullptr) queries_counter_->Add(1);
  IOLAP_RETURN_IF_ERROR(EnsureShardsReady());
  const Rect rect = RegionToRect(*schema_, region);
  LockedShards ls = AcquireShared(rect, shards);
  if (generation != nullptr) *generation = ls.global_gen;
  return ScanRollUp(ls, region, dim, level, func);
}

// ---------------------------------------------------------------------------
// Mutation paths.

Status QueryService::MutateLocked(
    const std::vector<Rect>& rects, MaintenanceStats* stats,
    const std::function<Status(MaintenanceStats*)>& apply) {
  if (manager_ == nullptr) {
    return Status::FailedPrecondition(
        "QueryService is read-only (no MaintenanceManager)");
  }
  IOLAP_RETURN_IF_ERROR(EnsureShardsReady());
  TraceSpan span("serve.commit");
  std::lock_guard<std::mutex> mutation_lock(mutation_mu_);
  const std::vector<int> touched = TouchedShards(rects);
  std::vector<std::unique_lock<std::shared_mutex>> shard_locks;
  shard_locks.reserve(touched.size());
  for (int s : touched) shard_locks.emplace_back(shards_[s]->mu);
  span.AddArg("shards_locked", static_cast<int64_t>(touched.size()));

  const int64_t old_rows = edb_->size();
  MaintenanceStats local;
  MaintenanceStats* s = stats != nullptr ? stats : &local;
  // Stats may be reused across batches; only this batch's boxes matter.
  const size_t box_start = s->touched_boxes.size();
  Status status = apply(s);

  // The mirror is a snapshot of the pre-batch EDB; drop it (success or
  // failure — either may have changed rows). In-flight scans on untouched
  // shards keep their reference until they finish; new queries fall back
  // to the row path until RefreshColumnar / Compact rebuilds it.
  if (options_.edb_format == EdbFormat::kColumnar) DropColumnar();

  if (shards_.size() > 1) {
    // Re-derive the touched shards' row ranges even on failure — a failed
    // batch may have partially applied inside them.
    const Status ranges = RebuildTouchedLocked(touched, old_rows);
    if (!ranges.ok()) {
      // Ranges are unreliable now; force a full re-init (which excludes
      // every query and mutator) on the next entry.
      shards_ready_.store(false, std::memory_order_release);
      if (status.ok()) status = ranges;
    }
  }

  // Bump even on failure: a failed batch may have partially applied, and a
  // stale generation must never look current.
  const int64_t gen = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (generation_gauge_ != nullptr) generation_gauge_->Set(gen);
  if (mutations_counter_ != nullptr) mutations_counter_->Add(1);
  for (int si : touched) {
    Shard& shard = *shards_[si];
    const int64_t sg = shard.gen.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (shard.gen_gauge != nullptr) shard.gen_gauge->Set(sg);
    if (shard.mutations != nullptr) shard.mutations->Add(1);
  }

  if (cache_ != nullptr) {
    int64_t dropped = 0;
    if (!status.ok()) {
      // The batch can only have written inside the shards it locked: drop
      // exactly the entries that read those shards, keep the rest.
      uint64_t mask = 0;
      for (int si : touched) mask |= uint64_t{1} << si;
      dropped = cache_->InvalidateShards(mask);
    } else {
      dropped = cache_->Invalidate(s->touched_boxes.data() + box_start,
                                   s->touched_boxes.size() - box_start,
                                   schema_->num_dims());
    }
    span.AddArg("invalidated_entries", dropped);
  }
  if (agg_index_ != nullptr) {
    if (status.ok()) {
      // Fold the batch's buffered row deltas into the index; its dirty
      // min/max marks come from the same touched boxes the cache used.
      Status committed =
          agg_index_->Commit(s->touched_boxes.data() + box_start,
                             s->touched_boxes.size() - box_start);
      if (!committed.ok()) agg_index_->Invalidate();
      if (shards_.size() > 1) {
        // Query-path rebuilds are gated off in sharded mode; if the commit
        // left the index stale, bring it back here while mutation_mu_
        // still excludes every other writer (concurrent readers are safe).
        const Status rebuilt = agg_index_->RebuildIfStale();
        (void)rebuilt;  // failure: queries keep falling back to scans
      }
    } else {
      agg_index_->Invalidate();
    }
  }
  if (synopsis_ != nullptr) {
    if (status.ok()) {
      const Status committed = synopsis_->Commit();
      if (!committed.ok()) synopsis_->Invalidate();
    } else {
      // A failed batch may have applied any prefix of its row changes;
      // the buffered deltas no longer describe the EDB.
      synopsis_->Invalidate();
    }
    // Rebuild while mutation_mu_ still excludes every other writer
    // (concurrent readers never touch a stale synopsis: EstimateAggregate
    // refuses until ready). A failure just leaves bounded queries
    // falling back to the scan tier.
    const Status rebuilt = synopsis_->RebuildIfStale();
    (void)rebuilt;
  }
  return status;
}

Status QueryService::ApplyUpdates(const std::vector<FactUpdate>& updates,
                                  MaintenanceStats* stats) {
  std::vector<Rect> rects;
  rects.reserve(updates.size());
  for (const FactUpdate& u : updates) {
    rects.push_back(FactRegionToRect(*schema_, u.before));
  }
  return MutateLocked(rects, stats, [this, &updates](MaintenanceStats* s) {
    return manager_->ApplyUpdates(updates, s);
  });
}

Status QueryService::InsertFacts(const std::vector<FactRecord>& inserts,
                                 MaintenanceStats* stats) {
  std::vector<Rect> rects;
  rects.reserve(inserts.size());
  for (const FactRecord& f : inserts) {
    rects.push_back(FactRegionToRect(*schema_, f));
  }
  return MutateLocked(rects, stats, [this, &inserts](MaintenanceStats* s) {
    return manager_->InsertFacts(inserts, s);
  });
}

Status QueryService::DeleteFacts(const std::vector<FactRecord>& deletes,
                                 MaintenanceStats* stats) {
  std::vector<Rect> rects;
  rects.reserve(deletes.size());
  for (const FactRecord& f : deletes) {
    rects.push_back(FactRegionToRect(*schema_, f));
  }
  return MutateLocked(rects, stats, [this, &deletes](MaintenanceStats* s) {
    return manager_->DeleteFacts(deletes, s);
  });
}

Result<int64_t> QueryService::Compact() {
  if (manager_ == nullptr) {
    return Status::FailedPrecondition(
        "QueryService is read-only (no MaintenanceManager)");
  }
  IOLAP_RETURN_IF_ERROR(EnsureShardsReady());
  TraceSpan span("serve.commit");
  std::lock_guard<std::mutex> mutation_lock(mutation_mu_);
  // Compaction rewrites every row position: every shard is locked.
  std::vector<std::unique_lock<std::shared_mutex>> shard_locks;
  shard_locks.reserve(shards_.size());
  for (auto& shard : shards_) shard_locks.emplace_back(shard->mu);
  if (options_.edb_format == EdbFormat::kColumnar) DropColumnar();
  Result<int64_t> removed = manager_->CompactEdb();
  if (!removed.ok()) {
    // The rewrite may have partially applied; drop everything and force a
    // new generation so nothing stale survives.
    if (cache_ != nullptr) cache_->Clear();
    if (agg_index_ != nullptr) agg_index_->Invalidate();
    if (synopsis_ != nullptr) synopsis_->Invalidate();
    const int64_t gen =
        generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (generation_gauge_ != nullptr) generation_gauge_->Set(gen);
    for (auto& shard : shards_) {
      const int64_t sg = shard->gen.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (shard->gen_gauge != nullptr) shard->gen_gauge->Set(sg);
    }
  }
  if (shards_.size() > 1) {
    // Row positions changed wholesale (success or partial failure):
    // rebuild every shard's ranges from one scan.
    for (auto& shard : shards_) shard->ranges.clear();
    int prev_shard = 0;
    const Status ranges = AppendRangesFromScan(0, edb_->size(), &prev_shard);
    if (!ranges.ok()) {
      shards_ready_.store(false, std::memory_order_release);
      if (removed.ok()) return ranges;
    }
  }
  // On success the logical EDB content is unchanged (only tombstones were
  // squeezed out), so cached results (and the index, which is keyed by
  // cell, not row position) stay valid and the generation holds.
  if (removed.ok() && options_.edb_format == EdbFormat::kColumnar) {
    // Everything is quiescent under the shard locks: rebuild the mirror
    // from the compacted (tombstone-free) EDB. Failure just leaves
    // queries on the row path.
    const Status built = BuildColumnar();
    (void)built;
  }
  return removed;
}

// ---------------------------------------------------------------------------
// Columnar mirror lifecycle.

std::shared_ptr<const ColumnarEdb> QueryService::ColumnarSnapshot() const {
  std::lock_guard<std::mutex> lock(columnar_mu_);
  return columnar_;
}

bool QueryService::columnar_active() const {
  return ColumnarSnapshot() != nullptr;
}

void QueryService::DropColumnar() {
  std::lock_guard<std::mutex> lock(columnar_mu_);
  columnar_.reset();  // file deleted once the last in-flight scan releases
}

Status QueryService::BuildColumnar() {
  ColumnarWriteOptions copts;
  copts.rows_per_extent = options_.columnar_rows_per_extent;
  IOLAP_ASSIGN_OR_RETURN(ColumnarEdb mirror,
                         WriteColumnarEdb(*env_, *schema_, *edb_, copts));
  StorageEnv* env = env_;
  std::shared_ptr<const ColumnarEdb> next(
      new ColumnarEdb(std::move(mirror)), [env](const ColumnarEdb* c) {
        const Status evicted = env->pool().EvictFile(c->file_id());
        (void)evicted;
        const Status deleted = env->disk().DeleteFile(c->file_id());
        (void)deleted;
        delete c;
      });
  std::lock_guard<std::mutex> lock(columnar_mu_);
  columnar_ = std::move(next);
  return Status::Ok();
}

Status QueryService::RefreshColumnar() {
  if (options_.edb_format != EdbFormat::kColumnar) return Status::Ok();
  IOLAP_RETURN_IF_ERROR(EnsureShardsReady());
  // Exclude mutators (the EDB must hold still for the conversion pass);
  // concurrent queries keep answering on whichever path is current.
  std::lock_guard<std::mutex> mutation_lock(mutation_mu_);
  return BuildColumnar();
}

}  // namespace iolap
