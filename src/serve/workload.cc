#include "serve/workload.h"

#include <sstream>
#include <utility>

namespace iolap {

namespace {

/// Strict numeric extraction: the stream must yield a value, and the token
/// must be consumed whole (no "12x").
template <typename T>
Status ReadNumber(std::istringstream& in, const char* what, T* out) {
  if (!(in >> *out)) {
    return Status::InvalidArgument(std::string("expected ") + what);
  }
  return Status::Ok();
}

/// Applies every remaining "Dim=Node" token to `region`; errors on the
/// first token that is not one.
Status ReadConstraints(const StarSchema& schema, std::istringstream& in,
                       QueryRegion* region) {
  std::string token;
  while (in >> token) {
    IOLAP_ASSIGN_OR_RETURN(auto dn, ParseDimNodeToken(schema, token));
    region->With(dn.first, dn.second);
  }
  return Status::Ok();
}

Status ExpectEnd(std::istringstream& in, const char* op) {
  std::string extra;
  if (in >> extra) {
    return Status::InvalidArgument(std::string(op) + ": trailing token '" +
                                   extra + "'");
  }
  return Status::Ok();
}

}  // namespace

const char* TraceOpName(TraceOpType type) {
  switch (type) {
    case TraceOpType::kAgg:
      return "agg";
    case TraceOpType::kAggBounded:
      return "agg_bounded";
    case TraceOpType::kRollUp:
      return "rollup";
    case TraceOpType::kCompletions:
      return "completions";
    case TraceOpType::kUpdate:
      return "update";
    case TraceOpType::kInsert:
      return "insert";
    case TraceOpType::kDelete:
      return "delete";
    case TraceOpType::kCompact:
      return "compact";
  }
  return "unknown";
}

Result<AggregateFunc> ParseAggregateFunc(const std::string& name) {
  if (name == "sum") return AggregateFunc::kSum;
  if (name == "count") return AggregateFunc::kCount;
  if (name == "avg") return AggregateFunc::kAverage;
  if (name == "min") return AggregateFunc::kMin;
  if (name == "max") return AggregateFunc::kMax;
  return Status::InvalidArgument(
      "unknown aggregate function '" + name + "' (sum|count|avg|min|max)");
}

Result<std::pair<int, NodeId>> ParseDimNodeToken(const StarSchema& schema,
                                                 const std::string& token) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("expected Dim=Node, got '" + token + "'");
  }
  const std::string dim_name = token.substr(0, eq);
  const std::string node_name = token.substr(eq + 1);
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (schema.dim(d).dimension_name() == dim_name) {
      IOLAP_ASSIGN_OR_RETURN(NodeId node, schema.dim(d).FindNode(node_name));
      return std::make_pair(d, node);
    }
  }
  return Status::InvalidArgument("unknown dimension '" + dim_name + "'");
}

Result<bool> ParseTraceOp(const StarSchema& schema, const std::string& line,
                          TraceOp* op) {
  std::istringstream in(line.substr(0, line.find('#')));
  std::string keyword;
  if (!(in >> keyword)) return false;  // blank / comment-only line
  *op = TraceOp{};

  if (keyword == "agg" || keyword == "agg_bounded") {
    op->type = keyword == "agg" ? TraceOpType::kAgg : TraceOpType::kAggBounded;
    std::string func_name;
    if (!(in >> func_name)) {
      return Status::InvalidArgument(keyword + ": expected function");
    }
    IOLAP_ASSIGN_OR_RETURN(op->func, ParseAggregateFunc(func_name));
    if (op->type == TraceOpType::kAggBounded) {
      IOLAP_RETURN_IF_ERROR(ReadNumber(in, "agg_bounded epsilon",
                                       &op->epsilon));
      IOLAP_RETURN_IF_ERROR(ReadNumber(in, "agg_bounded delta", &op->delta));
      if (op->epsilon < 0) {
        return Status::InvalidArgument("agg_bounded: epsilon must be >= 0");
      }
      if (op->delta <= 0 || op->delta >= 1) {
        return Status::InvalidArgument("agg_bounded: delta must be in (0, 1)");
      }
    }
    IOLAP_RETURN_IF_ERROR(ReadConstraints(schema, in, &op->region));
    return true;
  }
  if (keyword == "rollup") {
    op->type = TraceOpType::kRollUp;
    std::string func_name, dim_name;
    if (!(in >> func_name)) {
      return Status::InvalidArgument("rollup: expected function");
    }
    IOLAP_ASSIGN_OR_RETURN(op->func, ParseAggregateFunc(func_name));
    if (!(in >> dim_name)) {
      return Status::InvalidArgument("rollup: expected dimension");
    }
    for (int d = 0; d < schema.num_dims(); ++d) {
      if (schema.dim(d).dimension_name() == dim_name) op->dim = d;
    }
    if (op->dim < 0) {
      return Status::InvalidArgument("unknown dimension '" + dim_name + "'");
    }
    IOLAP_RETURN_IF_ERROR(ReadNumber(in, "rollup level", &op->level));
    // Levels count leaves as 1 and ALL as num_levels (model/hierarchy.h).
    if (op->level < 1 || op->level > schema.dim(op->dim).num_levels()) {
      return Status::InvalidArgument("rollup: level out of range");
    }
    IOLAP_RETURN_IF_ERROR(ReadConstraints(schema, in, &op->region));
    return true;
  }
  if (keyword == "completions" || keyword == "delete") {
    op->type = keyword == "delete" ? TraceOpType::kDelete
                                   : TraceOpType::kCompletions;
    IOLAP_RETURN_IF_ERROR(ReadNumber(in, "fact id", &op->fact_id));
    IOLAP_RETURN_IF_ERROR(ExpectEnd(in, keyword.c_str()));
    return true;
  }
  if (keyword == "update") {
    op->type = TraceOpType::kUpdate;
    IOLAP_RETURN_IF_ERROR(ReadNumber(in, "fact id", &op->fact_id));
    IOLAP_RETURN_IF_ERROR(ReadNumber(in, "update measure", &op->measure));
    IOLAP_RETURN_IF_ERROR(ExpectEnd(in, "update"));
    return true;
  }
  if (keyword == "insert") {
    op->type = TraceOpType::kInsert;
    IOLAP_RETURN_IF_ERROR(ReadNumber(in, "fact id", &op->fact_id));
    IOLAP_RETURN_IF_ERROR(ReadNumber(in, "insert measure", &op->measure));
    IOLAP_RETURN_IF_ERROR(ReadConstraints(schema, in, &op->region));
    return true;
  }
  if (keyword == "compact") {
    op->type = TraceOpType::kCompact;
    IOLAP_RETURN_IF_ERROR(ExpectEnd(in, "compact"));
    return true;
  }
  return Status::InvalidArgument("unknown workload op '" + keyword + "'");
}

}  // namespace iolap
