#include "serve/aggregate_cache.h"

#include <utility>

#include "obs/metrics.h"

namespace iolap {

AggregateCache::AggregateCache(int64_t capacity_slots)
    : capacity_slots_(capacity_slots),
      hits_counter_(GlobalCounter("serve.cache.hits")),
      misses_counter_(GlobalCounter("serve.cache.misses")),
      evicted_counter_(GlobalCounter("serve.cache.evicted_entries")),
      invalidated_counter_(GlobalCounter("serve.cache.invalidated_entries")),
      slots_gauge_(GlobalGauge("serve.cache.used_slots")) {}

AggregateCacheKey AggregateCache::MakeAggregateKey(const StarSchema& schema,
                                                   const QueryRegion& region,
                                                   AggregateFunc func,
                                                   AnswerMode mode) {
  AggregateCacheKey key;
  const QueryRegion normalized = NormalizeRegion(schema, region);
  for (int d = 0; d < kMaxDims; ++d) key.node[d] = normalized.node[d];
  key.kind = 0;
  key.func = static_cast<int8_t>(func);
  key.mode = static_cast<int8_t>(mode);
  return key;
}

AggregateCacheKey AggregateCache::MakeRollUpKey(const StarSchema& schema,
                                                const QueryRegion& region,
                                                int dim, int level,
                                                AggregateFunc func) {
  AggregateCacheKey key = MakeAggregateKey(schema, region, func);
  key.kind = 1;
  key.dim = static_cast<int8_t>(dim);
  key.level = static_cast<int8_t>(level);
  return key;
}

bool AggregateCache::Lookup(const AggregateCacheKey& key,
                            std::vector<AggregateResult>* values,
                            int64_t* generation, double* bound) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    if (misses_counter_ != nullptr) misses_counter_->Add(1);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  *values = it->second->values;
  if (generation != nullptr) *generation = it->second->generation;
  if (bound != nullptr) *bound = it->second->bound;
  ++stats_.hits;
  if (hits_counter_ != nullptr) hits_counter_->Add(1);
  return true;
}

void AggregateCache::Insert(const AggregateCacheKey& key, const Rect& bbox,
                            std::vector<AggregateResult> values,
                            int64_t generation, uint64_t shard_mask,
                            double bound) {
  const int64_t slots = static_cast<int64_t>(values.size());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (a concurrent miss on the same key recomputed it).
    used_slots_ -= static_cast<int64_t>(it->second->values.size());
    it->second->values = std::move(values);
    it->second->bbox = bbox;
    it->second->generation = generation;
    it->second->shard_mask = shard_mask;
    it->second->bound = bound;
    used_slots_ += slots;
    lru_.splice(lru_.begin(), lru_, it->second);
    if (slots_gauge_ != nullptr) slots_gauge_->Set(used_slots_);
    return;
  }
  if (slots > capacity_slots_) return;  // bigger than the whole cache
  EvictForSpace(slots);
  lru_.push_front(
      Entry{key, bbox, std::move(values), generation, shard_mask, bound});
  index_.emplace(key, lru_.begin());
  used_slots_ += slots;
  ++stats_.inserted_entries;
  if (slots_gauge_ != nullptr) slots_gauge_->Set(used_slots_);
}

void AggregateCache::EvictForSpace(int64_t needed_slots) {
  while (!lru_.empty() && used_slots_ + needed_slots > capacity_slots_) {
    const Entry& victim = lru_.back();
    used_slots_ -= static_cast<int64_t>(victim.values.size());
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evicted_entries;
    if (evicted_counter_ != nullptr) evicted_counter_->Add(1);
  }
}

int64_t AggregateCache::Invalidate(const Rect* boxes, size_t num_boxes,
                                   int num_dims) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    bool touched = false;
    for (size_t b = 0; b < num_boxes && !touched; ++b) {
      touched = RectsIntersect(it->bbox, boxes[b], num_dims);
    }
    if (touched) {
      used_slots_ -= static_cast<int64_t>(it->values.size());
      index_.erase(it->key);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidated_entries += dropped;
  if (invalidated_counter_ != nullptr) invalidated_counter_->Add(dropped);
  if (slots_gauge_ != nullptr) slots_gauge_->Set(used_slots_);
  return dropped;
}

int64_t AggregateCache::InvalidateShards(uint64_t shard_mask) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if ((it->shard_mask & shard_mask) != 0) {
      used_slots_ -= static_cast<int64_t>(it->values.size());
      index_.erase(it->key);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidated_entries += dropped;
  if (invalidated_counter_ != nullptr) invalidated_counter_->Add(dropped);
  if (slots_gauge_ != nullptr) slots_gauge_->Set(used_slots_);
  return dropped;
}

void AggregateCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  used_slots_ = 0;
  if (slots_gauge_ != nullptr) slots_gauge_->Set(0);
}

int64_t AggregateCache::used_slots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_slots_;
}

int64_t AggregateCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(lru_.size());
}

AggregateCache::Stats AggregateCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace iolap
