#include "serve/groupby.h"

#include <algorithm>
#include <array>
#include <memory>
#include <utility>

#include "edb/columnar.h"
#include "exec/parallel_for.h"
#include "exec/parallel_scheduler.h"
#include "obs/metrics.h"

namespace iolap {

namespace {

/// Radix fan-out of the high-cardinality variant. Fixed (never derived from
/// the thread count) so the bucket assignment, and with it every
/// accumulation order, is configuration-independent. Power of two for the
/// mask below.
constexpr int kRadixBuckets = 64;

/// Chunk-private group accumulator: dense array for small group counts, an
/// open-addressing hash (linear probing, power-of-two capacity) above
/// dense_group_limit. Both hold exactly one accumulator per touched group,
/// so which one is chosen never changes any value — only memory.
class LocalAcc {
 public:
  LocalAcc(int64_t num_groups, int64_t dense_limit)
      : dense_(num_groups <= dense_limit) {
    if (dense_) {
      vals_.resize(num_groups);
    } else {
      capacity_ = 64;
      keys_.assign(capacity_, -1);
      vals_.resize(capacity_);
    }
  }

  void Add(int32_t g, double weight, double measure) {
    if (dense_) {
      AccumulateAggregate(&vals_[g], weight, measure);
      return;
    }
    if (size_ * 10 >= capacity_ * 7) Grow();
    size_t slot = static_cast<size_t>(g) & (capacity_ - 1);
    while (keys_[slot] != -1 && keys_[slot] != g) {
      slot = (slot + 1) & (capacity_ - 1);
    }
    if (keys_[slot] == -1) {
      keys_[slot] = g;
      ++size_;
    }
    AccumulateAggregate(&vals_[slot], weight, measure);
  }

  /// Merges every touched group into `out` (groups with no matching rows
  /// are skipped, so merging is a no-op for untouched chunks). Distinct
  /// groups are independent accumulators, so the iteration order within
  /// one chunk cannot affect any value.
  void MergeInto(std::vector<AggregateResult>* out) const {
    if (dense_) {
      for (size_t g = 0; g < vals_.size(); ++g) {
        if (vals_[g].count > 0) MergeAggregate(&(*out)[g], vals_[g]);
      }
    } else {
      for (size_t s = 0; s < capacity_; ++s) {
        if (keys_[s] != -1) MergeAggregate(&(*out)[keys_[s]], vals_[s]);
      }
    }
  }

 private:
  void Grow() {
    const size_t new_capacity = capacity_ * 2;
    std::vector<int32_t> keys(new_capacity, -1);
    std::vector<AggregateResult> vals(new_capacity);
    for (size_t s = 0; s < capacity_; ++s) {
      if (keys_[s] == -1) continue;
      size_t slot = static_cast<size_t>(keys_[s]) & (new_capacity - 1);
      while (keys[slot] != -1) slot = (slot + 1) & (new_capacity - 1);
      keys[slot] = keys_[s];
      vals[slot] = vals_[s];
    }
    keys_.swap(keys);
    vals_.swap(vals);
    capacity_ = new_capacity;
  }

  bool dense_;
  std::vector<AggregateResult> vals_;
  std::vector<int32_t> keys_;  // hash only; -1 = empty
  size_t capacity_ = 0;        // hash only; power of two
  size_t size_ = 0;            // hash only
};

}  // namespace

GroupByEngine::GroupByEngine(StorageEnv* env, const StarSchema* schema,
                             const TypedFile<EdbRecord>* edb, ThreadPool* pool,
                             const GroupByOptions& options)
    : env_(env),
      schema_(schema),
      edb_(edb),
      pool_(pool),
      options_(options),
      local_queries_counter_(GlobalCounter("serve.groupby.local_queries")),
      radix_queries_counter_(GlobalCounter("serve.groupby.radix_queries")) {
  // Snap the grid unit up to whole pages so no two chunks share a page and
  // every task's read pins are for pages only it touches.
  const int64_t rpp = TypedFile<EdbRecord>::kRecordsPerPage;
  const int64_t want = std::max<int64_t>(1, options_.chunk_rows);
  chunk_rows_ = ((want + rpp - 1) / rpp) * rpp;
}

std::vector<GroupByEngine::Chunk> GroupByEngine::BuildChunks(
    const std::vector<RowRange>& ranges) const {
  std::vector<Chunk> chunks;
  for (const RowRange& r : ranges) {
    int64_t pos = r.begin;
    while (pos < r.end) {
      const int64_t id = pos / chunk_rows_;
      const int64_t stop = std::min(r.end, (id + 1) * chunk_rows_);
      if (!chunks.empty() && chunks.back().id == id) {
        chunks.back().parts.push_back({pos, stop});
      } else {
        chunks.push_back({id, {{pos, stop}}});
      }
      pos = stop;
    }
  }
  return chunks;
}

namespace {

/// Scans one chunk's row parts, filtering tombstones and the region, and
/// feeds matching rows to `fn(group, weight, measure)` in ascending row
/// order. `dim < 0` puts every row in group 0 (point aggregate).
template <typename Fn>
Status ScanChunk(StorageEnv* env, const StarSchema* schema,
                 const TypedFile<EdbRecord>* edb,
                 const std::vector<RowRange>& parts, const QueryRegion& region,
                 int dim, int level, int64_t* rows_seen, Fn&& fn) {
  const Hierarchy* h = dim >= 0 ? &schema->dim(dim) : nullptr;
  EdbRecord rec;
  for (const RowRange& part : parts) {
    auto cursor = edb->Scan(env->pool(), part.begin, part.end);
    while (!cursor.done()) {
      IOLAP_RETURN_IF_ERROR(cursor.Next(&rec));
      ++*rows_seen;
      if (rec.weight == 0 && rec.fact_id == -1) continue;  // tombstone
      if (!RegionContainsLeaf(*schema, region, rec.leaf)) continue;
      const int32_t g =
          h != nullptr ? h->LeafAncestorOrdinal(rec.leaf[dim], level) : 0;
      fn(g, rec.weight, rec.measure);
    }
  }
  return Status::Ok();
}

/// Columnar twin of ScanChunk: identical rows, order, filter outcomes and
/// (g, weight, measure) doubles, but decodes only the projected columns —
/// weight + measure + the leaf dimensions the region constrains or the
/// rollup groups by. Tombstones are skipped on weight alone (sound because
/// the conversion step rejects weight-0 rows that are not tombstones).
template <typename Fn>
Status ScanChunkColumnar(StorageEnv* env, const StarSchema* schema,
                         const ColumnarEdb* columnar,
                         const std::vector<RowRange>& parts,
                         const QueryRegion& region, int dim, int level,
                         int64_t* rows_seen, Fn&& fn) {
  const Hierarchy* h = dim >= 0 ? &schema->dim(dim) : nullptr;
  const EdbProjection proj = AggregateScanProjection(*schema, region, dim);
  bool filter[kMaxDims] = {};
  for (int d = 0; d < schema->num_dims(); ++d) {
    filter[d] = RegionConstrainsDim(*schema, region, d);
  }
  int64_t seen = 0;
  for (const RowRange& part : parts) {
    IOLAP_RETURN_IF_ERROR(columnar->ScanRows(
        env->pool(), part.begin, part.end, proj,
        [&](const ColumnarEdb::Row& row) {
          ++seen;
          if (ColumnarEdb::IsTombstone(row.weight)) return;
          for (int d = 0; d < schema->num_dims(); ++d) {
            if (filter[d] &&
                !schema->dim(d).Covers(region.node[d], row.leaf[d])) {
              return;
            }
          }
          const int32_t g =
              h != nullptr ? h->LeafAncestorOrdinal(row.leaf[dim], level) : 0;
          fn(g, row.weight, row.measure);
        }));
  }
  *rows_seen += seen;
  return Status::Ok();
}

}  // namespace

Result<std::vector<AggregateResult>> GroupByEngine::LocalGroupBy(
    const std::vector<Chunk>& chunks, const QueryRegion& region, int dim,
    int level, int64_t num_groups, GroupByStats* stats,
    const ColumnarEdb* columnar) {
  if (local_queries_counter_ != nullptr) local_queries_counter_->Add(1);
  std::vector<AggregateResult> groups(num_groups);
  std::vector<std::unique_ptr<LocalAcc>> accs(chunks.size());
  std::vector<int64_t> rows(chunks.size(), 0);

  std::vector<ScheduledUnit> units(chunks.size());
  const int64_t unit_cost = std::min<int64_t>(num_groups, chunk_rows_);
  for (size_t c = 0; c < chunks.size(); ++c) {
    ScheduledUnit& unit = units[c];
    unit.cost = unit_cost;
    unit.run = [this, &chunks, &accs, &rows, &region, dim, level, num_groups,
                columnar, c]() -> Status {
      auto acc =
          std::make_unique<LocalAcc>(num_groups, options_.dense_group_limit);
      auto add = [&acc](int32_t g, double w, double m) { acc->Add(g, w, m); };
      if (columnar != nullptr) {
        IOLAP_RETURN_IF_ERROR(ScanChunkColumnar(env_, schema_, columnar,
                                                chunks[c].parts, region, dim,
                                                level, &rows[c], add));
      } else {
        IOLAP_RETURN_IF_ERROR(ScanChunk(env_, schema_, edb_, chunks[c].parts,
                                        region, dim, level, &rows[c], add));
      }
      accs[c] = std::move(acc);
      return Status::Ok();
    };
    // Ordered emit: partials fold into the result in ascending chunk order
    // regardless of which worker finished first.
    unit.emit = [&groups, &accs, c]() -> Status {
      accs[c]->MergeInto(&groups);
      accs[c].reset();
      return Status::Ok();
    };
  }
  const int threads = pool_ != nullptr ? pool_->num_threads() : 1;
  ParallelScheduler scheduler(pool_, unit_cost * threads * 4);
  IOLAP_RETURN_IF_ERROR(scheduler.Execute(units));

  for (int64_t r : rows) stats->rows_scanned += r;
  stats->chunks = static_cast<int64_t>(chunks.size());
  stats->used_radix = false;
  return groups;
}

Result<std::vector<AggregateResult>> GroupByEngine::RadixGroupBy(
    const std::vector<Chunk>& chunks, const QueryRegion& region, int dim,
    int level, int64_t num_groups, GroupByStats* stats,
    const ColumnarEdb* columnar) {
  if (radix_queries_counter_ != nullptr) radix_queries_counter_->Add(1);
  struct Triple {
    int32_t g;
    double weight;
    double measure;
  };
  using ChunkBuckets = std::array<std::vector<Triple>, kRadixBuckets>;

  // Phase 1: each chunk partitions its matching rows by group ordinal into
  // a fixed bucket fan-out, preserving row order within each bucket.
  std::vector<ChunkBuckets> partitioned(chunks.size());
  std::vector<int64_t> rows(chunks.size(), 0);
  IOLAP_RETURN_IF_ERROR(ParallelFor(
      pool_, static_cast<int64_t>(chunks.size()), [&](int64_t c) -> Status {
        ChunkBuckets& buckets = partitioned[c];
        auto add = [&buckets](int32_t g, double w, double m) {
          buckets[g & (kRadixBuckets - 1)].push_back({g, w, m});
        };
        if (columnar != nullptr) {
          return ScanChunkColumnar(env_, schema_, columnar, chunks[c].parts,
                                   region, dim, level, &rows[c], add);
        }
        return ScanChunk(env_, schema_, edb_, chunks[c].parts, region, dim,
                         level, &rows[c], add);
      }));

  // Phase 2: one task per bucket folds its rows in (chunk, row) order —
  // i.e. ascending global row order — directly into the disjoint slice of
  // the result it owns. No merge step, no cross-task writes, and the
  // per-group accumulation order is independent of threads and ranges.
  std::vector<AggregateResult> groups(num_groups);
  IOLAP_RETURN_IF_ERROR(
      ParallelFor(pool_, kRadixBuckets, [&](int64_t b) -> Status {
        for (const ChunkBuckets& buckets : partitioned) {
          for (const Triple& t : buckets[b]) {
            AccumulateAggregate(&groups[t.g], t.weight, t.measure);
          }
        }
        return Status::Ok();
      }));

  for (int64_t r : rows) stats->rows_scanned += r;
  stats->chunks = static_cast<int64_t>(chunks.size());
  stats->used_radix = true;
  return groups;
}

Result<AggregateResult> GroupByEngine::Aggregate(
    const std::vector<RowRange>& ranges, const QueryRegion& region,
    AggregateFunc func, GroupByStats* stats, const ColumnarEdb* columnar) {
  GroupByStats local;
  GroupByStats* st = stats != nullptr ? stats : &local;
  const std::vector<Chunk> chunks = BuildChunks(ranges);
  // A point aggregate is a one-group group-by; one group always selects
  // the local variant.
  IOLAP_ASSIGN_OR_RETURN(
      std::vector<AggregateResult> groups,
      LocalGroupBy(chunks, region, /*dim=*/-1, /*level=*/0, 1, st, columnar));
  FinalizeAggregate(&groups[0], func);
  return groups[0];
}

Result<std::vector<AggregateResult>> GroupByEngine::RollUp(
    const std::vector<RowRange>& ranges, const QueryRegion& region, int dim,
    int level, AggregateFunc func, GroupByStats* stats,
    const ColumnarEdb* columnar) {
  if (dim < 0 || dim >= schema_->num_dims()) {
    return Status::InvalidArgument("rollup dimension out of range");
  }
  const Hierarchy& h = schema_->dim(dim);
  if (level < 1 || level > h.num_levels()) {
    return Status::InvalidArgument("rollup level out of range");
  }
  GroupByStats local;
  GroupByStats* st = stats != nullptr ? stats : &local;
  const int64_t num_groups = h.num_nodes_at_level(level);
  const std::vector<Chunk> chunks = BuildChunks(ranges);
  // Adaptive selection, from the (query-intrinsic) group count alone: the
  // local variant merges O(groups) per chunk, which loses to partitioning
  // once the group count dwarfs the matching rows per chunk.
  std::vector<AggregateResult> groups;
  if (num_groups > options_.radix_min_groups) {
    IOLAP_ASSIGN_OR_RETURN(groups, RadixGroupBy(chunks, region, dim, level,
                                                num_groups, st, columnar));
  } else {
    IOLAP_ASSIGN_OR_RETURN(groups, LocalGroupBy(chunks, region, dim, level,
                                                num_groups, st, columnar));
  }
  for (AggregateResult& g : groups) FinalizeAggregate(&g, func);
  return groups;
}

}  // namespace iolap
