#ifndef IOLAP_SERVE_SHARD_MAP_H_
#define IOLAP_SERVE_SHARD_MAP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "model/schema.h"
#include "rtree/rtree.h"

namespace iolap {

/// Shards are identified by dense ids [0, num_shards); the per-shard state a
/// QueryService keeps is addressed by these ids, and touched-shard sets are
/// passed around as bit masks, which caps the shard count at 64.
inline constexpr int kMaxShards = 64;

/// Static partitioning of the leaf space into shards: contiguous,
/// non-overlapping dimension-0 leaf ranges covering [0, num_leaves).
///
/// Boundaries are chosen so that no allocation component's bounding box
/// straddles a shard boundary — overlapping component extents are first
/// merged into indivisible "atoms", then atoms are packed into shards
/// balancing the per-leaf row histogram. Components are the unit of
/// maintenance (a batch re-allocates whole components, never parts of one),
/// so component-aligned shards make every maintenance mutation, and the
/// `touched_boxes` invalidation it emits, shard-local *for the component
/// structure the map was built from*. Components merged by later inserts
/// may come to span shards; the serve layer handles that conservatively by
/// locking every shard a component's box intersects.
///
/// The map itself is immutable after Build — all lookups are const and
/// safe from any thread.
class ShardMap {
 public:
  /// Trivial single-shard map covering the whole leaf space.
  ShardMap() : begins_{0, 0} {}

  /// Builds a map with at most `requested_shards` shards (clamped to
  /// [1, kMaxShards] and to what the component atoms allow).
  /// `component_boxes` are the bounding boxes (inclusive leaf coordinates)
  /// that must not straddle a boundary; `leaf_rows[l]` is the number of EDB
  /// rows whose dimension-0 leaf is `l` (pass an empty vector for a uniform
  /// assumption). Deterministic: depends only on its arguments.
  static ShardMap Build(const StarSchema& schema, int requested_shards,
                        const std::vector<Rect>& component_boxes,
                        const std::vector<int64_t>& leaf_rows);

  int num_shards() const { return static_cast<int>(begins_.size()) - 1; }

  /// Shard owning dimension-0 leaf `leaf0` (clamped into the leaf range, so
  /// any int32 is safe to pass).
  int ShardOfLeaf(int32_t leaf0) const;

  /// Inclusive shard id range [first, last] intersecting `rect`'s
  /// dimension-0 interval.
  std::pair<int, int> ShardRangeOfRect(const Rect& rect) const {
    return {ShardOfLeaf(rect.lo[0]), ShardOfLeaf(rect.hi[0])};
  }

  /// Bit mask of the shards intersecting `rect`.
  uint64_t MaskOfRect(const Rect& rect) const {
    auto [lo, hi] = ShardRangeOfRect(rect);
    return MaskOfRange(lo, hi);
  }

  /// Bit mask of the inclusive shard range [first, last].
  static uint64_t MaskOfRange(int first, int last) {
    uint64_t mask = 0;
    for (int s = first; s <= last; ++s) mask |= uint64_t{1} << s;
    return mask;
  }

  /// First / one-past-last dimension-0 leaf of shard `s`.
  int32_t shard_begin(int s) const { return begins_[s]; }
  int32_t shard_end(int s) const { return begins_[s + 1]; }

 private:
  /// begins_[s] is shard s's first leaf; begins_.back() == num_leaves.
  std::vector<int32_t> begins_;
};

}  // namespace iolap

#endif  // IOLAP_SERVE_SHARD_MAP_H_
