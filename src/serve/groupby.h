#ifndef IOLAP_SERVE_GROUPBY_H_
#define IOLAP_SERVE_GROUPBY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "edb/query.h"
#include "exec/thread_pool.h"
#include "model/records.h"
#include "model/schema.h"
#include "storage/paged_file.h"
#include "storage/storage_env.h"

namespace iolap {

class ColumnarEdb;

/// Half-open row-index range [begin, end) of the Extended Database.
struct RowRange {
  int64_t begin = 0;
  int64_t end = 0;
};

struct GroupByOptions {
  /// Unit of the fixed chunk grid (snapped up to a whole number of EDB
  /// pages). The grid lives on *global row indices* and is independent of
  /// the thread count, the shard count, and the row ranges scanned — the
  /// cornerstone of cross-configuration determinism (see class comment).
  int64_t chunk_rows = 4096;
  /// Group counts strictly above this select the radix-partitioned variant
  /// instead of the local-accumulator variant. Selection depends only on
  /// the query (its group count), never on threads/shards/ranges.
  int64_t radix_min_groups = 4096;
  /// Group counts at most this use dense per-chunk arrays; above it (up to
  /// radix_min_groups) a per-chunk open-addressing hash. Affects memory and
  /// speed only — both accumulate identical values.
  int64_t dense_group_limit = 512;
};

struct GroupByStats {
  int64_t rows_scanned = 0;  // rows examined (incl. filtered / tombstones)
  int64_t chunks = 0;        // grid chunks actually scanned
  bool used_radix = false;
};

/// Parallel group-by aggregation over EDB row ranges.
///
/// Two variants, selected per query from the group count alone:
///  * local (two-phase local accumulator + ordered merge): each grid chunk
///    scans its rows into a chunk-private accumulator (dense array for
///    small group counts, open-addressing hash above dense_group_limit);
///    partials then merge into the result in ascending chunk order on the
///    calling thread, with in-flight partials bounded — compute is
///    unordered, output is ordered, the same discipline as the parallel
///    Transitive path.
///  * radix (for high-cardinality rollups): phase 1 partitions each
///    chunk's matching rows into a fixed number of buckets by group
///    ordinal; phase 2 gives each bucket to one task that folds its rows
///    in (chunk, row) order directly into the disjoint slice of the result
///    it owns — no merge step and no contention at any group count.
///
/// Determinism: a row matches the region filter independently of how the
/// caller's ranges cover it, and rows outside the caller's ranges never
/// match (the serve layer only queries regions whose rows lie inside the
/// ranges it locked). So for a fixed chunk grid the sequence of matching
/// rows per chunk — hence every floating-point accumulation order — is
/// identical for ANY covering range set and ANY thread count, and partials
/// with no matching rows are skipped at merge time. Answers are
/// byte-identical across thread and shard configurations.
///
/// Thread-safe for concurrent calls; all state is per-call. The scanned
/// ranges must be sorted, disjoint, and stable for the duration of the
/// call (the serve layer guarantees this by holding shard locks).
class GroupByEngine {
 public:
  GroupByEngine(StorageEnv* env, const StarSchema* schema,
                const TypedFile<EdbRecord>* edb, ThreadPool* pool,
                const GroupByOptions& options);

  /// Allocation-weighted point aggregate over `region`, scanning `ranges`.
  /// With a non-null `columnar` (a mirror of the same rows as the row EDB,
  /// in the same order), chunks scan the columnar extents and decode only
  /// the columns the query projects (AggregateScanProjection) — same rows,
  /// same order, same double arithmetic, so answers stay byte-identical to
  /// the row path.
  Result<AggregateResult> Aggregate(const std::vector<RowRange>& ranges,
                                    const QueryRegion& region,
                                    AggregateFunc func, GroupByStats* stats,
                                    const ColumnarEdb* columnar = nullptr);

  /// Group-by (rollup): one aggregate per node of `dim` at `level`
  /// restricted to `region`, indexed by node ordinal. `columnar` as in
  /// Aggregate.
  Result<std::vector<AggregateResult>> RollUp(
      const std::vector<RowRange>& ranges, const QueryRegion& region, int dim,
      int level, AggregateFunc func, GroupByStats* stats,
      const ColumnarEdb* columnar = nullptr);

 private:
  struct Chunk {
    int64_t id = 0;                 // grid cell index (row / chunk_rows_)
    std::vector<RowRange> parts;    // ranges ∩ grid cell, ascending
  };

  std::vector<Chunk> BuildChunks(const std::vector<RowRange>& ranges) const;

  Result<std::vector<AggregateResult>> LocalGroupBy(
      const std::vector<Chunk>& chunks, const QueryRegion& region, int dim,
      int level, int64_t num_groups, GroupByStats* stats,
      const ColumnarEdb* columnar);
  Result<std::vector<AggregateResult>> RadixGroupBy(
      const std::vector<Chunk>& chunks, const QueryRegion& region, int dim,
      int level, int64_t num_groups, GroupByStats* stats,
      const ColumnarEdb* columnar);

  StorageEnv* env_;
  const StarSchema* schema_;
  const TypedFile<EdbRecord>* edb_;
  ThreadPool* pool_;  // null = run inline on the calling thread
  GroupByOptions options_;
  int64_t chunk_rows_;  // options.chunk_rows snapped to pages

  // Cached global-metrics handles (null when observability is disabled).
  class Counter* local_queries_counter_;
  class Counter* radix_queries_counter_;
};

}  // namespace iolap

#endif  // IOLAP_SERVE_GROUPBY_H_
