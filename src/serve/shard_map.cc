#include "serve/shard_map.h"

#include <algorithm>

namespace iolap {

int ShardMap::ShardOfLeaf(int32_t leaf0) const {
  const int32_t clamped =
      std::clamp(leaf0, int32_t{0}, std::max(int32_t{0}, begins_.back() - 1));
  // begins_ is sorted; the owner is the last shard starting at or before the
  // leaf.
  auto it = std::upper_bound(begins_.begin(), begins_.end() - 1, clamped);
  return static_cast<int>(it - begins_.begin()) - 1;
}

ShardMap ShardMap::Build(const StarSchema& schema, int requested_shards,
                         const std::vector<Rect>& component_boxes,
                         const std::vector<int64_t>& leaf_rows) {
  const int32_t num_leaves = schema.dim(0).num_leaves();
  const int want = std::clamp(requested_shards, 1, kMaxShards);

  // Merge overlapping component dim-0 extents into indivisible atoms; a
  // boundary may only fall between atoms. Leaves not covered by any
  // component are single-leaf atoms.
  std::vector<std::pair<int32_t, int32_t>> extents;  // [lo, hi] inclusive
  extents.reserve(component_boxes.size());
  for (const Rect& box : component_boxes) {
    const int32_t lo = std::clamp(box.lo[0], int32_t{0}, num_leaves - 1);
    const int32_t hi = std::clamp(box.hi[0], lo, num_leaves - 1);
    extents.emplace_back(lo, hi);
  }
  std::sort(extents.begin(), extents.end());
  std::vector<int32_t> cut_ok;  // leaf positions where a boundary may start
  cut_ok.reserve(num_leaves);
  {
    int32_t pos = 0;
    size_t e = 0;
    while (pos < num_leaves) {
      cut_ok.push_back(pos);
      // Extend over every extent overlapping [pos, end): the atom ends only
      // once no component straddles its right edge.
      int32_t end = pos + 1;
      while (e < extents.size() && extents[e].first < end) {
        end = std::max(end, extents[e].second + 1);
        ++e;
      }
      pos = end;
    }
  }

  ShardMap map;
  map.begins_.clear();
  const int64_t atoms = static_cast<int64_t>(cut_ok.size());
  const int shards = static_cast<int>(std::min<int64_t>(want, atoms));

  // Per-atom row weight from the leaf histogram (uniform when absent), then
  // greedy packing toward total/shards per shard. Greedy on a fixed atom
  // order with a fixed target is deterministic.
  std::vector<int64_t> atom_rows(atoms, 0);
  int64_t total = 0;
  for (int64_t a = 0; a < atoms; ++a) {
    const int32_t lo = cut_ok[a];
    const int32_t hi = a + 1 < atoms ? cut_ok[a + 1] : num_leaves;
    if (leaf_rows.empty()) {
      atom_rows[a] = hi - lo;
    } else {
      for (int32_t l = lo; l < hi && l < static_cast<int32_t>(leaf_rows.size());
           ++l) {
        atom_rows[a] += leaf_rows[l];
      }
    }
    total += atom_rows[a];
  }

  map.begins_.push_back(0);
  int64_t cum = 0;
  int64_t a = 0;
  for (int s = 0; s < shards - 1; ++s) {
    // Advance to the s-th cumulative row target, taking at least one atom
    // per shard and leaving enough atoms for the remaining shards.
    const int64_t target = ((s + 1) * total) / shards;
    const int64_t must_leave = shards - s - 1;
    int64_t taken = 0;
    while (a < atoms - must_leave && (taken == 0 || cum < target)) {
      cum += atom_rows[a];
      ++a;
      ++taken;
    }
    map.begins_.push_back(cut_ok[a]);
  }
  map.begins_.push_back(num_leaves);
  return map;
}

}  // namespace iolap
