#ifndef IOLAP_SERVE_AGGREGATE_CACHE_H_
#define IOLAP_SERVE_AGGREGATE_CACHE_H_

#include <cstdint>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "edb/query.h"
#include "model/schema.h"
#include "rtree/rtree.h"
#include "serve/answer.h"

namespace iolap {

/// Identity of one cacheable query result: the *normalized* region (see
/// NormalizeRegion — regions selecting the same cells share one key), the
/// aggregate function, for rollups the grouping dimension + level, and the
/// answer mode (a bounded result must never serve an exact query, nor the
/// reverse — their values differ). POD so it hashes/compares by bytes;
/// `reserved` keeps the byte image free of uninitialized padding.
struct AggregateCacheKey {
  int32_t node[kMaxDims] = {};
  int8_t kind = 0;   // 0 = point aggregate, 1 = rollup
  int8_t func = 0;   // AggregateFunc
  int8_t dim = -1;   // rollup grouping dimension, -1 for point aggregates
  int8_t level = 0;  // rollup grouping level, 0 for point aggregates
  int8_t mode = 0;   // AnswerMode
  int8_t reserved[3] = {};

  bool operator==(const AggregateCacheKey& other) const {
    return std::memcmp(this, &other, sizeof(*this)) == 0;
  }
};
static_assert(std::is_trivially_copyable_v<AggregateCacheKey>);
static_assert(sizeof(AggregateCacheKey) == sizeof(int32_t) * kMaxDims + 8);

struct AggregateCacheKeyHash {
  size_t operator()(const AggregateCacheKey& key) const {
    // FNV-1a over the key bytes.
    const unsigned char* p = reinterpret_cast<const unsigned char*>(&key);
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < sizeof(key); ++i) {
      h = (h ^ p[i]) * 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Generation-versioned LRU cache of aggregate / rollup results over the
/// Extended Database.
///
/// Capacity is counted in *slots*: a point aggregate costs 1, a rollup
/// costs one slot per group, so one cached 900-group rollup competes
/// fairly with 900 point aggregates. Entries larger than the whole
/// capacity are simply not admitted.
///
/// Invalidation is selective: a maintenance commit hands over the bounding
/// boxes of everything it touched (MaintenanceStats::touched_boxes) and
/// only entries whose region intersects one of those boxes are dropped —
/// results over untouched regions survive arbitrarily many commits. The
/// stored generation records when an entry was computed; because
/// invalidation runs eagerly inside every commit, any entry still present
/// is valid for the current generation.
///
/// Thread-safe; every public method takes the internal mutex. Lock order
/// with the serve layer: QueryService's snapshot lock is always acquired
/// first, the cache mutex second, and neither is ever taken in the other
/// order.
class AggregateCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t inserted_entries = 0;
    int64_t evicted_entries = 0;       // LRU pressure
    int64_t invalidated_entries = 0;   // maintenance overlap
  };

  /// `capacity_slots` <= 0 constructs a cache that never admits anything.
  explicit AggregateCache(int64_t capacity_slots);

  static AggregateCacheKey MakeAggregateKey(const StarSchema& schema,
                                            const QueryRegion& region,
                                            AggregateFunc func,
                                            AnswerMode mode = AnswerMode::kExact);
  static AggregateCacheKey MakeRollUpKey(const StarSchema& schema,
                                         const QueryRegion& region, int dim,
                                         int level, AggregateFunc func);

  /// On hit, copies the cached values (size 1 for point aggregates) into
  /// `values`, the computing generation into `generation` if non-null, the
  /// entry's promised error bound (0 for exact entries) into `bound` if
  /// non-null, and promotes the entry to most-recently-used.
  bool Lookup(const AggregateCacheKey& key,
              std::vector<AggregateResult>* values,
              int64_t* generation = nullptr, double* bound = nullptr);

  /// Admits (or refreshes) a result computed at `generation` for a query
  /// whose region covers the leaf box `bbox` and read the shards in
  /// `shard_mask` (every bit set, the default, is always safe). Bounded-mode
  /// entries record their promised error bound. Evicts from the LRU tail
  /// until the entry fits; an entry bigger than the whole cache is not
  /// admitted.
  void Insert(const AggregateCacheKey& key, const Rect& bbox,
              std::vector<AggregateResult> values, int64_t generation,
              uint64_t shard_mask = ~uint64_t{0}, double bound = 0);

  /// Drops every entry whose region intersects one of `boxes`; returns the
  /// number dropped.
  int64_t Invalidate(const Rect* boxes, size_t num_boxes, int num_dims);

  /// Drops every entry that read a shard in `shard_mask`; returns the
  /// number dropped. This is the failed-batch path: a batch that failed on
  /// shards S may have partially applied anywhere in S, but cannot have
  /// touched a byte outside S — so entries over other shards survive.
  int64_t InvalidateShards(uint64_t shard_mask);

  void Clear();

  int64_t capacity_slots() const { return capacity_slots_; }
  int64_t used_slots() const;
  int64_t entries() const;
  Stats stats() const;

 private:
  struct Entry {
    AggregateCacheKey key;
    Rect bbox;
    std::vector<AggregateResult> values;
    int64_t generation = 0;
    uint64_t shard_mask = ~uint64_t{0};
    double bound = 0;  // promised error bound (bounded-mode entries)
  };
  using Lru = std::list<Entry>;

  void EvictForSpace(int64_t needed_slots);

  const int64_t capacity_slots_;
  mutable std::mutex mu_;
  Lru lru_;  // front = most recently used
  std::unordered_map<AggregateCacheKey, Lru::iterator, AggregateCacheKeyHash>
      index_;
  int64_t used_slots_ = 0;
  Stats stats_;
  // Cached global-metrics handles (null when observability is disabled).
  class Counter* hits_counter_;
  class Counter* misses_counter_;
  class Counter* evicted_counter_;
  class Counter* invalidated_counter_;
  class Gauge* slots_gauge_;
};

}  // namespace iolap

#endif  // IOLAP_SERVE_AGGREGATE_CACHE_H_
