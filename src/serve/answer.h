#ifndef IOLAP_SERVE_ANSWER_H_
#define IOLAP_SERVE_ANSWER_H_

#include <cstdint>

namespace iolap {

/// Per-query answer contract. Exact answers are byte-identical to a scan of
/// the current snapshot; bounded answers may come from the synopsis tier and
/// promise |answer - exact| <= bound <= epsilon with probability >= 1 - delta
/// (with certainty when the bound is Fréchet-derived). Cache entries carry
/// the mode so a bounded result can never serve an exact query.
enum class AnswerMode : int8_t { kExact = 0, kBounded = 1 };

/// Which tier produced an answer, in escalation order.
enum class AnswerTier : int8_t { kCache = 0, kIndex = 1, kSynopsis = 2,
                                 kScan = 3 };

inline const char* AnswerTierName(AnswerTier tier) {
  switch (tier) {
    case AnswerTier::kCache: return "cache";
    case AnswerTier::kIndex: return "index";
    case AnswerTier::kSynopsis: return "synopsis";
    case AnswerTier::kScan: return "scan";
  }
  return "?";
}

struct AnswerSpec {
  AnswerMode mode = AnswerMode::kExact;
  double epsilon = 0;  // max acceptable error bound (absolute, measure units)
  double delta = 0.05;  // max probability the bound is exceeded

  static AnswerSpec Exact() { return AnswerSpec{}; }
  static AnswerSpec Bounded(double epsilon, double delta = 0.05) {
    return AnswerSpec{AnswerMode::kBounded, epsilon, delta};
  }
};

/// How a query was answered: the serving tier, the promised error bound
/// (0 for exact answers), and whether the cache served it.
struct AnswerStats {
  AnswerTier tier = AnswerTier::kScan;
  double bound = 0;
  bool cache_hit = false;
  bool exact = true;
};

}  // namespace iolap

#endif  // IOLAP_SERVE_ANSWER_H_
